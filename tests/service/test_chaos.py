"""Unified chaos harness: the daemon under every injected fault class.

These tests arm :mod:`repro._faults` specs (``REPRO_FAULT_INJECT`` +
a shared ``REPRO_FAULT_STATE`` counter directory, so ``@count`` caps
hold across the daemon's worker processes) and drive a real
``python -m repro serve`` subprocess through each fault mode at the
two service sites:

* ``service:<family>`` — inside a shard worker process, per request;
* ``frontend:<op>`` — on the asyncio event loop, per admission.

The invariants pinned here are the PR 9 acceptance criteria: the
daemon keeps serving under every fault class, no journaled request is
ever lost (faulted answers stay *pending* and a drain completes them),
and a SIGKILL of a chaos-wedged daemon is equivalent to a clean run
after ``--resume --drain-exit``.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.parallel.journal import Journal
from repro.service.client import SocketClient

BENCH = "3-5 RNS"
SRC = str(pathlib.Path(repro.__file__).resolve().parent.parent)


def daemon_env(tmp_path, fault=None, **extra):
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC, env.get("PYTHONPATH")) if p
    )
    env.pop("REPRO_FAULT_INJECT", None)
    if fault is not None:
        state = tmp_path / "fault-state"
        state.mkdir(exist_ok=True)
        env["REPRO_FAULT_INJECT"] = fault
        env["REPRO_FAULT_STATE"] = str(state)
    env.update(extra)
    return env


def start_daemon(tmp_path, *args, env=None):
    sock = tmp_path / "svc.sock"
    sock.unlink(missing_ok=True)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", str(sock), *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        cwd=tmp_path,
        env=env or daemon_env(tmp_path),
    )
    deadline = time.monotonic() + 30
    while not sock.exists():
        if proc.poll() is not None:
            out = proc.stdout.read().decode()
            raise AssertionError(f"daemon died on start:\n{out}")
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("daemon never created its socket")
        time.sleep(0.05)
    return proc, sock


def stop_daemon(proc, sock):
    if proc.poll() is None:
        try:
            with SocketClient(sock, timeout=10) as client:
                client.call("shutdown")
        except Exception:
            proc.kill()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def drain(tmp_path, journal, env=None):
    return subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            "--journal", str(journal), "--resume", "--drain-exit",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,
        env=env or daemon_env(tmp_path),
    )


class TestWorkerSiteFaults:
    """Every fault mode at ``service:rns``, one real daemon each.

    ``survives_via`` is how the daemon absorbs the fault: ``retry``
    (worker dies, is rebuilt, and the re-journaled attempt succeeds —
    the client still gets ``ok``) or ``answer`` (the fault surfaces as
    a structured engine-error reply and the worker stays up).
    """

    @pytest.mark.parametrize(
        "mode,survives_via,args,extra_env",
        [
            ("crash", "retry", (), {}),
            ("pickle", "retry", (), {}),
            ("hang", "retry", ("--request-timeout", "1"),
             {"REPRO_FAULT_HANG_S": "60"}),
            ("raise", "answer", (), {}),
            ("oom", "answer", (), {}),
            ("slow", "ok", (), {"REPRO_FAULT_SLOW_S": "0.3"}),
        ],
        ids=["crash", "pickle", "hang", "raise", "oom", "slow"],
    )
    def test_daemon_keeps_serving(
        self, tmp_path, mode, survives_via, args, extra_env
    ):
        journal = tmp_path / "svc.journal"
        env = daemon_env(tmp_path, fault=f"{mode}=service:rns@1", **extra_env)
        proc, sock = start_daemon(
            tmp_path, "--workers", "2", "--journal", str(journal), *args,
            env=env,
        )
        try:
            with SocketClient(sock, timeout=120) as client:
                first = client.call(
                    "width_reduce", {"benchmark": BENCH}, check=False
                )
                stats = client.call("stats", check=False)["result"]
                if survives_via in ("retry", "ok"):
                    assert first["ok"], first
                    restarts = stats["workers"]["processes"]["rns"]["restarts"]
                    assert restarts == (1 if survives_via == "retry" else 0)
                    if mode == "slow":
                        assert first["meta"]["wall_s"] >= 0.3
                else:
                    assert first["ok"] is False
                    expected = {"raise": "FaultInjected", "oom": "MemoryError"}
                    assert first["error"]["type"] == expected[mode]
                # The daemon is intact either way: the breaker closed
                # again (or never opened) and fresh work still serves.
                breaker = stats["workers"]["breakers"].get("rns", {})
                assert breaker.get("state", "closed") == "closed"
                again = client.call(
                    "width_reduce",
                    {"benchmark": BENCH, "sift": False},
                    check=False,
                )
                assert again["ok"], again
        finally:
            stop_daemon(proc, sock)
        assert proc.wait(timeout=30) == 0

        # No journaled request lost: ok answers have result records; a
        # faulted *answer* stays pending and the drain completes it
        # (the fault state dir remembers the @1 cap, so it cannot
        # re-fire during the drain).
        with Journal(journal, resume=True) as j:
            pending = {rec["key"] for rec in j.pending()}
        if survives_via == "answer":
            assert len(pending) == 1
            drained = drain(tmp_path, journal, env=env)
            assert drained.returncode == 0, drained.stderr
            assert "drained 1" in drained.stdout
            with Journal(journal, resume=True) as j:
                assert j.pending() == []
        else:
            assert pending == set()


class TestFrontendSiteFaults:
    def test_raise_on_the_event_loop_answers_structured_error(self, tmp_path):
        """A fault on the asyncio front door must answer, not kill the
        loop — and it fires *before* the journal write, so nothing is
        recorded for a request that was never admitted."""
        journal = tmp_path / "svc.journal"
        env = daemon_env(tmp_path, fault="raise=frontend:width_reduce@1")
        proc, sock = start_daemon(
            tmp_path, "--journal", str(journal), env=env
        )
        try:
            with SocketClient(sock) as client:
                doc = client.call(
                    "width_reduce", {"benchmark": BENCH}, check=False
                )
                assert doc["ok"] is False
                assert doc["error"]["type"] == "FaultInjected"
                assert client.call("ping", check=False)["ok"]
                again = client.call(
                    "width_reduce", {"benchmark": BENCH}, check=False
                )
                assert again["ok"], again
        finally:
            stop_daemon(proc, sock)
        with Journal(journal, resume=True) as j:
            assert len(j.results()) == 1  # only the successful retry

    def test_abort_kills_the_daemon_like_sigkill(self, tmp_path):
        """``abort`` is the whole-process kill: the daemon dies with
        exit code 32 mid-request, clients see the connection drop, and
        a restart serves normally."""
        env = daemon_env(tmp_path, fault="abort=frontend:width_reduce@1")
        proc, sock = start_daemon(tmp_path, env=env)
        client = SocketClient(sock)
        client.send(
            {"id": "x", "op": "width_reduce", "params": {"benchmark": BENCH}}
        )
        assert proc.wait(timeout=30) == 32
        client.close()
        # The @1 cap is spent (shared state dir): the restart is clean.
        proc2, sock2 = start_daemon(tmp_path, env=env)
        try:
            with SocketClient(sock2) as c2:
                assert c2.call(
                    "width_reduce", {"benchmark": BENCH}, check=False
                )["ok"]
        finally:
            stop_daemon(proc2, sock2)


class TestKillEquivalenceUnderChaos:
    def test_sigkill_wedged_daemon_drains_to_clean_results(self, tmp_path):
        """SIGKILL a daemon whose worker is hanging on an injected
        fault: ``--resume --drain-exit`` re-executes the journaled
        request and its results equal an uninterrupted run's."""
        query = {"id": "a", "op": "width_reduce", "params": {"benchmark": BENCH}}

        kill_journal = tmp_path / "killed.journal"
        env = daemon_env(
            tmp_path, fault="hang=service:rns@1", REPRO_FAULT_HANG_S="10"
        )
        proc, sock = start_daemon(
            tmp_path, "--workers", "2", "--journal", str(kill_journal), env=env
        )
        client = SocketClient(sock)
        client.send(query)  # enqueue; the worker will wedge on it
        deadline = time.monotonic() + 30
        while True:
            text = (
                kill_journal.read_text() if kill_journal.exists() else ""
            )
            if '"type":"attempt"' in text:
                break
            assert time.monotonic() < deadline, "attempt never journaled"
            time.sleep(0.02)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        client.close()

        # Drain with no fault armed: the journaled request completes.
        drained = drain(tmp_path, kill_journal)
        assert drained.returncode == 0, drained.stderr
        assert "drained 1" in drained.stdout

        clean_journal = tmp_path / "clean.journal"
        proc2, sock2 = start_daemon(
            tmp_path, "--journal", str(clean_journal)
        )
        try:
            with SocketClient(sock2) as c2:
                reply = c2.call(query["op"], query["params"], check=False)
                assert reply["ok"], reply
        finally:
            stop_daemon(proc2, sock2)

        with Journal(kill_journal, resume=True) as jk:
            assert jk.pending() == []
            killed = {k: r.result for k, r in jk.results().items()}
        with Journal(clean_journal, resume=True) as jc:
            clean = {k: r.result for k, r in jc.results().items()}
        assert killed == clean
        assert len(killed) == 1


class TestDeadlineUnderChaos:
    def test_slow_fault_trips_deadline_worker_stays_reusable(self, tmp_path):
        """A ``slow`` fault manufactures an expensive query; its
        ``deadline_ms`` turns into a wedge-terminate (the injected
        sleep never reaches a governor checkpoint), the daemon rebuilds
        the worker, and the family keeps serving."""
        env = daemon_env(
            tmp_path, fault="slow=service:rns@1", REPRO_FAULT_SLOW_S="30"
        )
        proc, sock = start_daemon(tmp_path, "--workers", "2", env=env)
        try:
            with SocketClient(sock, timeout=120) as client:
                t0 = time.monotonic()
                doc = client.call(
                    "width_reduce",
                    {"benchmark": BENCH},
                    deadline_ms=1000,
                    check=False,
                )
                wall = time.monotonic() - t0
                assert doc["ok"] is False, doc
                assert wall < 29, "the 30s injected sleep was cut short"
                again = client.call(
                    "width_reduce", {"benchmark": BENCH}, check=False
                )
                assert again["ok"], again
        finally:
            stop_daemon(proc, sock)
        assert proc.wait(timeout=30) == 0
