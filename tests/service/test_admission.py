"""Admission control: shortest-job-first order and tenant budgets."""

import pytest

from repro.errors import ServiceError
from repro.parallel.costs import CostModel
from repro.service.admission import Admission, estimate_size
from repro.service.protocol import Request


def req(op: str, benchmark: str, *, tenant: str = "default", **params) -> Request:
    params["benchmark"] = benchmark
    return Request(id=f"{op}:{benchmark}", op=op, params=params, tenant=tenant)


class TestEstimateSize:
    def test_bigger_care_set_costs_more(self):
        small = estimate_size("width_reduce", {"benchmark": "3-5 RNS"})
        big = estimate_size("width_reduce", {"benchmark": "11-13-15-17 RNS"})
        assert big > small

    def test_cascade_heavier_than_decompose(self):
        params = {"benchmark": "5-7-11-13 RNS"}
        assert estimate_size("cascade", params) > estimate_size(
            "decompose", params
        )

    def test_unparsable_name_falls_back(self):
        assert estimate_size("width_reduce", {"benchmark": "mystery"}) > 0

    def test_huge_exponent_does_not_blow_up(self):
        value = estimate_size(
            "width_reduce", {"benchmark": "99-digit 13-nary to binary"}
        )
        assert value > 0


class TestQueueOrder:
    def test_shortest_job_first(self):
        adm = Admission(CostModel())
        adm.submit(req("cascade", "11-13-15-17 RNS"))
        adm.submit(req("width_reduce", "3-5 RNS"))
        adm.submit(req("decompose", "5-7 RNS", cut_height=3))
        popped = [adm.pop().request.op for _ in range(3)]
        assert popped[-1] == "cascade"
        assert popped[0] in ("width_reduce", "decompose")
        assert adm.pop() is None

    def test_equal_cost_keeps_arrival_order(self):
        adm = Admission(CostModel())
        first = adm.submit(req("width_reduce", "3-5 RNS"))
        # An identical query has the identical estimate; the sequence
        # number must break the tie in arrival order.
        second = adm.submit(req("width_reduce", "3-5 RNS"))
        assert adm.pop() is first
        assert adm.pop() is second

    def test_observation_beats_seed(self):
        """A measured wall time re-ranks future arrivals (EWMA wins)."""
        adm = Admission(CostModel())
        cheap_on_paper = req("width_reduce", "3-5 RNS")
        key = cheap_on_paper.key()
        adm.observe(key, 500.0)  # it turned out to be a monster
        adm.submit(cheap_on_paper)
        adm.submit(req("cascade", "11-13-15-17 RNS"))
        assert adm.pop().request.op == "cascade"

    def test_len_tracks_queue(self):
        adm = Admission(CostModel())
        assert len(adm) == 0
        adm.submit(req("width_reduce", "3-5 RNS"))
        assert len(adm) == 1
        adm.pop()
        assert len(adm) == 0


class TestTenantBudgets:
    def test_exhausted_tenant_is_refused(self):
        adm = Admission(CostModel(), tenant_max_steps=100)
        budget = adm.tenant_budget("greedy")
        budget.steps = 101  # as if prior queries spent it
        with pytest.raises(ServiceError, match="greedy"):
            adm.submit(req("width_reduce", "3-5 RNS", tenant="greedy"))
        # Other tenants are unaffected.
        adm.submit(req("width_reduce", "3-5 RNS", tenant="frugal"))

    def test_budget_is_cumulative_across_entries(self):
        adm = Admission(CostModel(), tenant_max_steps=1000)
        budget = adm.tenant_budget("t")
        with budget:
            budget.steps += 400
        with budget:
            budget.steps += 400
        assert budget.steps == 800  # not reset by re-entry
        assert not budget.exhausted()

    def test_unlimited_by_default(self):
        adm = Admission(CostModel())
        budget = adm.tenant_budget("anyone")
        budget.steps = 10**12
        assert not budget.exhausted()

    def test_stats_shape(self):
        adm = Admission(CostModel(), tenant_max_steps=50)
        adm.submit(req("width_reduce", "3-5 RNS", tenant="a"))
        stats = adm.stats()
        assert stats["queued"] == 1
        assert stats["tenants"]["a"]["max_steps"] == 50
        assert stats["tenants"]["a"]["exhausted"] is False
