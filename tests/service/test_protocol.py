"""Wire protocol: parsing, validation, and content-addressed keys."""

import json

import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
    query_key,
)


def line(**kwargs) -> str:
    return json.dumps(kwargs)


class TestParse:
    def test_minimal_compute_request(self):
        req = parse_request(
            line(id="a", op="width_reduce", params={"benchmark": "3-5 RNS"})
        )
        assert req.id == "a"
        assert req.op == "width_reduce"
        assert req.tenant == "default"
        assert not req.is_control

    def test_control_ops(self):
        for op in ("ping", "stats", "shutdown"):
            assert parse_request(line(id="x", op=op)).is_control

    def test_bytes_input(self):
        req = parse_request(line(id="b", op="ping").encode())
        assert req.op == "ping"

    @pytest.mark.parametrize(
        "bad",
        [
            "not json",
            "[1, 2]",
            line(op="ping"),  # missing id
            line(id="", op="ping"),  # empty id
            line(id="x", op="frobnicate"),  # unknown op
            line(id="x", op="ping", params=[1]),  # params not an object
            line(id="x", op="width_reduce", params={}),  # missing benchmark
            line(id="x", op="width_reduce", params={"benchmark": 7}),
            line(id="x", op="width_reduce", params={"benchmark": "a", "bogus": 1}),
            line(id="x", op="decompose", params={"benchmark": "a"}),  # no cut
            line(id="x", op="pla_reduce", params={}),  # no pla text
            line(id="x", op="ping", tenant=""),
            line(id="x", op="ping", tt={"window": "wide"}),
            line(id="x", op="ping", tt={"fastpath": 1}),
            line(id="x", op="ping", tt={"unknown": True}),
            line(id="x", op="ping", budget={"max_ops": 1}),
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(bad)

    def test_invalid_utf8(self):
        with pytest.raises(ProtocolError):
            parse_request(b"\xff\xfe{}")


class TestQueryKey:
    def test_same_content_same_key(self):
        a = query_key("width_reduce", {"benchmark": "3-5 RNS"})
        b = query_key("width_reduce", {"benchmark": "3-5 RNS"})
        assert a == b
        assert a.startswith("query:width_reduce/")

    def test_params_change_key(self):
        a = query_key("width_reduce", {"benchmark": "3-5 RNS"})
        b = query_key("width_reduce", {"benchmark": "3-7 RNS"})
        assert a != b

    def test_tt_overrides_change_key(self):
        """Execution settings are part of query identity — two requests
        with different tt windows must never coalesce onto one run."""
        base = query_key("width_reduce", {"benchmark": "3-5 RNS"})
        tt = query_key("width_reduce", {"benchmark": "3-5 RNS"}, tt={"window": 4})
        budget = query_key(
            "width_reduce", {"benchmark": "3-5 RNS"}, budget={"max_steps": 10}
        )
        assert len({base, tt, budget}) == 3

    def test_request_key_matches_function(self):
        req = parse_request(
            line(id="k", op="decompose",
                 params={"benchmark": "3-5 RNS", "cut_height": 3})
        )
        assert req.key() == query_key("decompose", req.params)


class TestDocRoundtrip:
    def test_doc_rebuilds_equivalent_request(self):
        req = parse_request(
            line(
                id="r1",
                op="width_reduce",
                params={"benchmark": "3-5 RNS"},
                tenant="ci",
                tt={"window": 4},
                budget={"max_steps": 1000},
            )
        )
        again = Request.from_doc(req.doc(), id="replayed")
        assert again.key() == req.key()
        assert again.tenant == "ci"
        assert again.tt == {"window": 4}


class TestResponses:
    def test_ok_response_and_encode(self):
        doc = ok_response("a", {"x": 1}, shard="rns")
        raw = encode(doc)
        assert raw.endswith(b"\n")
        back = json.loads(raw)
        assert back["ok"] is True
        assert back["meta"]["shard"] == "rns"

    def test_error_response_from_exception(self):
        doc = error_response("a", ValueError("boom"))
        assert doc["ok"] is False
        assert doc["error"]["type"] == "ValueError"
        assert "boom" in doc["error"]["message"]

    def test_error_response_without_id(self):
        doc = error_response(None, "malformed")
        assert doc["id"] == ""
        assert doc["error"]["type"] == "ProtocolError"
