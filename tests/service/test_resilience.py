"""PR 9 resilience layer: shedding, deadlines, breakers, watchdog.

All in-process (one ``asyncio.run`` per test, no subprocesses): the
admission limits, the ``deadline_ms`` path, the circuit-breaker state
machine, and the memory watchdog's degradation ladder are deterministic
state transitions, so they are pinned here without process-management
flakiness.  The same behaviours under *real* process faults live in
``test_chaos.py``.
"""

import asyncio

import pytest

from repro.errors import CircuitOpenError, DeadlineError, OverloadedError
from repro.service.client import raise_for_code
from repro.service.admission import Admission
from repro.service.protocol import Request
from repro.service.server import Service
from repro.service.watchdog import MemoryWatchdog, rss_bytes
from repro.service.workers import CircuitBreaker

BENCH = "3-5 RNS"
SLOW_BENCH = "5-7-11-13 RNS"  # ~1s cold build: deadlines can interrupt it


def wr_request(rid, benchmark=BENCH, **extra):
    return Request(
        id=rid, op="width_reduce", params={"benchmark": benchmark}, **extra
    )


def run_service(coro_fn, *, pump=True, **service_kwargs):
    """Run ``coro_fn(service)`` against a fresh listener-less daemon.

    ``pump=False`` leaves the dispatcher off so tests can saturate the
    admission queue without racing execution.
    """

    async def main():
        service = Service(**service_kwargs)
        task = asyncio.ensure_future(service._pump()) if pump else None
        try:
            return await coro_fn(service)
        finally:
            service._stopping = True
            service._work.set()
            if task is not None:
                await task
            service.close()

    return asyncio.run(main())


class TestOverloadShedding:
    def test_queue_depth_limit_sheds_with_retry_after(self):
        async def scenario(service):
            fut = service._enqueue(wr_request("q1"))
            doc = await service.handle_request(wr_request("q2", "3-7 RNS"))
            fut.cancel()
            return doc, service

        doc, service = run_service(
            scenario, pump=False, max_queue_depth=1, result_cache_size=0
        )
        assert doc["ok"] is False
        assert doc["error"]["code"] == "overloaded"
        assert doc["error"]["retry_after"] > 0
        assert "queue depth" in doc["error"]["message"]
        assert service.admission.shed_total == 1

    def test_shed_request_is_never_journaled(self, tmp_path):
        """Refusal happens before the write-ahead journal: a shed query
        leaves no attempt record, so a later drain cannot resurrect
        work the client was told to retry."""
        journal = tmp_path / "svc.journal"

        async def scenario(service):
            fut = service._enqueue(wr_request("q1"))
            doc = await service.handle_request(wr_request("q2", "3-7 RNS"))
            fut.cancel()
            return doc

        doc = run_service(
            scenario,
            pump=False,
            max_queue_depth=1,
            result_cache_size=0,
            journal_path=journal,
        )
        assert doc["error"]["code"] == "overloaded"
        text = journal.read_text()
        assert '"3-5 RNS"' in text  # the admitted query's attempt
        assert '"3-7 RNS"' not in text  # the shed query left no trace

    def test_batched_waiter_rides_through_a_full_queue(self):
        """Coalescing onto an admitted query is not a new admission —
        the batcher answers even when the queue is at its bound."""

        async def scenario(service):
            fut = service._enqueue(wr_request("q1"))
            fut2 = service._enqueue(wr_request("q1-too"))  # identical: batched
            fut.cancel()
            fut2.cancel()
            return service

        service = run_service(
            scenario, pump=False, max_queue_depth=1, result_cache_size=0
        )
        assert service.batched_total == 1
        assert service.admission.shed_total == 0

    def test_tenant_inflight_cap_is_per_tenant(self):
        async def scenario(service):
            fut = service._enqueue(wr_request("a1", tenant="alice"))
            shed = await service.handle_request(
                wr_request("a2", "3-7 RNS", tenant="alice")
            )
            other = service._enqueue(wr_request("b1", "3-7 RNS", tenant="bob"))
            fut.cancel()
            other.cancel()
            return shed

        shed = run_service(
            scenario, pump=False, tenant_max_inflight=1, result_cache_size=0
        )
        assert shed["error"]["code"] == "overloaded"
        assert "alice" in shed["error"]["message"]

    def test_client_surfaces_overloaded_as_typed_exception(self):
        doc = {
            "id": "x",
            "ok": False,
            "error": {
                "type": "OverloadedError",
                "code": "overloaded",
                "message": "admission refused: queue depth limit reached",
                "retry_after": 1.25,
            },
        }
        with pytest.raises(OverloadedError) as info:
            raise_for_code(doc)
        assert info.value.retry_after == 1.25

    def test_retry_after_clamped_to_sane_band(self):
        admission = Admission()
        assert 0.1 <= admission.retry_after() <= 60.0


class TestDeadlines:
    def test_expired_in_queue_answers_deadline_exceeded(self):
        """A query whose deadline lapses while queued never reaches the
        engine; the answer is immediate and the counters say so."""

        async def scenario(service):
            fut = service._enqueue(wr_request("q1", deadline_ms=1))
            await asyncio.sleep(0.05)  # let the 1ms deadline lapse
            pump = asyncio.ensure_future(service._pump())
            doc = await fut
            service._stopping = True
            service._work.set()
            await pump
            return doc, service

        doc, service = run_service(scenario, pump=False, result_cache_size=0)
        assert doc["ok"] is False
        assert doc["error"]["code"] == "deadline_exceeded"
        assert service.deadline_exceeded_total == 1
        assert service.executed == 0, "the engine never ran"

    def test_mid_build_deadline_leaves_service_reusable(self):
        """The cooperative path: the governor aborts a ~1s build at a
        checkpoint, the worker thread survives, and the very next query
        on the same service succeeds."""

        async def scenario(service):
            cut = await service.handle_request(
                wr_request("slow", SLOW_BENCH, deadline_ms=200)
            )
            healthy = await service.handle_request(wr_request("ok"))
            return cut, healthy, service

        cut, healthy, service = run_service(scenario, result_cache_size=0)
        assert cut["ok"] is False
        assert cut["error"]["code"] == "deadline_exceeded"
        assert healthy["ok"], healthy
        assert service.deadline_exceeded_total == 1

    def test_deadline_ms_changes_the_query_key(self):
        """A deadline is part of the computation's identity: a
        deadlineless arrival must not coalesce onto an abortable
        attempt (and v2-era digests stay stable when unset)."""
        plain = wr_request("a").key()
        bounded = wr_request("b", deadline_ms=500).key()
        assert plain != bounded
        assert wr_request("c").key() == plain

    def test_expired_query_stays_pending_in_journal(self, tmp_path):
        """Deadlines bound the synchronous answer, not durability: the
        journaled attempt has no result record, so a drain still
        computes it."""
        journal = tmp_path / "svc.journal"

        async def scenario(service):
            fut = service._enqueue(wr_request("q1", deadline_ms=1))
            await asyncio.sleep(0.05)
            pump = asyncio.ensure_future(service._pump())
            doc = await fut
            service._stopping = True
            service._work.set()
            await pump
            return doc

        doc = run_service(
            scenario, pump=False, result_cache_size=0, journal_path=journal
        )
        assert doc["error"]["code"] == "deadline_exceeded"
        from repro.parallel.journal import Journal

        with Journal(journal, resume=True) as j:
            assert len(j.pending()) == 1


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, reset_s=60.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow(), "under threshold: still closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opens == 1
        assert 0.0 < breaker.retry_after() <= 60.0

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed", "non-consecutive failures don't trip"

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(threshold=1, reset_s=0.0)
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow(), "reset elapsed: this caller is the probe"
        assert breaker.state == "half_open"
        assert not breaker.allow(), "second caller waits on the probe"

    def test_probe_failure_reopens_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, reset_s=0.0)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()  # the probe died too
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert breaker.allow()  # reset_s=0: next probe is due immediately
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.failures == 0

    def test_open_breaker_fails_queries_fast(self):
        """Dispatcher integration: an open breaker answers
        ``circuit_open`` without spawning a worker process."""

        async def scenario(service):
            breaker = service.worker_pool.breaker("rns")
            breaker.record_failure()  # threshold=1: opens
            doc = await service.handle_request(wr_request("q1"))
            return doc, service

        doc, service = run_service(
            scenario,
            workers=1,
            breaker_threshold=1,
            breaker_reset_s=60.0,
            result_cache_size=0,
        )
        assert doc["ok"] is False
        assert doc["error"]["code"] == "circuit_open"
        assert doc["error"]["retry_after"] > 0
        assert service.worker_pool.workers == {}, "no process was spawned"

    def test_client_surfaces_circuit_open_as_typed_exception(self):
        doc = {
            "id": "x",
            "ok": False,
            "error": {
                "type": "CircuitOpenError",
                "code": "circuit_open",
                "message": "family 'rns' circuit breaker is open",
                "retry_after": 29.9,
            },
        }
        with pytest.raises(CircuitOpenError) as info:
            raise_for_code(doc)
        assert info.value.retry_after == 29.9

    def test_deadline_code_raises_deadline_error(self):
        doc = {
            "id": "x",
            "ok": False,
            "error": {
                "type": "DeadlineError",
                "code": "deadline_exceeded",
                "message": "query spent its deadline queued",
            },
        }
        with pytest.raises(DeadlineError):
            raise_for_code(doc)


class TestMemoryWatchdog:
    def test_rss_bytes_reads_something(self):
        assert rss_bytes() > 0

    def test_ladder_escalates_then_resets(self):
        async def scenario(service):
            await service.handle_request(wr_request("warm"))
            dog = service.watchdog
            dog.alive_limit = 1  # any populated shard is "over"
            stages = [dog.sample() for _ in range(4)]
            shed = await service.handle_request(wr_request("q2", "3-7 RNS"))
            dog.alive_limit = None  # pressure cleared
            recovered = dog.sample()
            after = await service.handle_request(wr_request("q3", "3-7 RNS"))
            return stages, shed, recovered, after, service

        stages, shed, recovered, after, service = run_service(
            scenario, result_cache_size=4
        )
        assert stages == ["housekeep", "evict", "shed", "shed"]
        assert shed["ok"] is False
        assert shed["error"]["code"] == "overloaded"
        assert "watchdog" in shed["error"]["message"]
        assert recovered == "ok"
        assert service.admission.shedding is False
        assert after["ok"], "shedding lifted once pressure cleared"
        dog = service.watchdog.stats()
        assert dog["sheds"] == 1, "re-shedding while shed is not re-counted"
        assert dog["housekeeps"] >= 1

    def test_housekeep_stage_drops_the_result_cache(self):
        async def scenario(service):
            await service.handle_request(wr_request("warm"))
            epoch = service.result_cache.epoch
            service.watchdog.alive_limit = 1
            service.watchdog.sample()
            return epoch, service.result_cache.epoch

        before, after = run_service(scenario)
        assert after == before + 1

    def test_pure_sampler_without_limits_never_degrades(self):
        async def scenario(service):
            await service.handle_request(wr_request("warm"))
            names = [service.watchdog.sample() for _ in range(3)]
            return names, service.stats()

        names, stats = run_service(scenario)
        assert names == ["ok", "ok", "ok"]
        dog = stats["watchdog"]
        assert dog["samples"] == 3
        assert dog["stage_name"] == "ok"
        assert dog["last_rss_bytes"] > 0

    def test_watchdog_block_in_stats_schema(self):
        async def scenario(service):
            return service.stats()

        stats = run_service(scenario, pump=False)
        assert stats["schema_version"] == 9
        assert stats["shed_total"] == 0
        assert stats["deadline_exceeded_total"] == 0
        for key in ("stage", "stage_name", "samples", "sheds"):
            assert key in stats["watchdog"]


class TestWatchdogEviction:
    def test_evict_stage_stops_coldest_idle_worker(self):
        """Multi-process stage 2: the LRU idle worker process is
        stopped (its warm state reloads from snapshots); in-flight
        families are never victims."""

        async def scenario(service):
            pool = service.worker_pool
            pool.get("rns")
            await asyncio.sleep(0.01)
            pool.get("pnary")  # rns is now the coldest
            dog = MemoryWatchdog(service, alive_limit=0)
            dog.stage = 1  # next over-limit sample escalates to evict
            service._inflight.add("pnary")  # pretend pnary is mid-query
            dog.last_alive = 1
            dog._evict()
            return set(pool.workers), dog.worker_evictions

        families, evictions = run_service(
            scenario, pump=False, workers=2, result_cache_size=0
        )
        assert families == {"pnary"}, "coldest idle worker was stopped"
        assert evictions == 1
