"""Shard node-pressure housekeeping, LRU eviction, and snapshots.

Pins the eviction contract the multi-process service leans on: under
``max_alive`` pressure a shard drops cold CFs first (LRU order), keeps
hot ones warm, and never evicts a CF pinned by an in-flight query.
Also covers the RBCF snapshot integration — a shard with a
``snapshot_dir`` persists freshly built CFs and warms later cold
starts from disk instead of re-running build+sift.
"""

import asyncio

import pytest

from repro.service.shards import (
    DEFAULT_MAX_ALIVE,
    Shard,
    ShardPool,
    default_max_alive,
    family_of,
)

HOT = "3-5 RNS"
COLD = "3-7 RNS"


def hot_cold_shard():
    """A shard holding COLD (older) and HOT (recently touched) CFs."""
    shard = Shard("rns")
    shard.base_cf(COLD)
    shard.base_cf(HOT)
    shard.base_cf(COLD)  # touch: LRU order is now [HOT, COLD]
    shard.base_cf(HOT)  # ...and back: [COLD, HOT]
    return shard


def key_of(benchmark):
    return f"{benchmark}|sift=True"


class TestEvictionOrder:
    def test_under_ceiling_nothing_is_evicted(self):
        shard = hot_cold_shard()
        shard.housekeep(shard.alive_nodes() + 1)
        assert set(shard.cfs) == {key_of(HOT), key_of(COLD)}
        assert shard.evicted_cfs == 0

    def test_cold_cf_evicted_first_hot_kept_warm(self):
        shard = hot_cold_shard()
        # Collect scratch first so the ceiling test below exercises the
        # eviction pass, not the scratch-collection pass.
        for cf in shard.cfs.values():
            cf.bdd.collect([cf.root])
        total = shard.alive_nodes()
        shard.housekeep(total - 1)
        assert key_of(HOT) in shard.cfs, "recently used CF must stay warm"
        assert key_of(COLD) not in shard.cfs, "coldest CF is dropped first"
        assert shard.evicted_cfs == 1

    def test_warm_hit_refreshes_recency(self):
        shard = Shard("rns")
        shard.base_cf(HOT)
        shard.base_cf(COLD)
        # Without the re-touch HOT would be oldest; the hit saves it.
        shard.base_cf(HOT)
        for cf in shard.cfs.values():
            cf.bdd.collect([cf.root])
        shard.housekeep(shard.alive_nodes() - 1)
        assert key_of(HOT) in shard.cfs
        assert key_of(COLD) not in shard.cfs

    def test_eviction_cold_starts_the_next_query(self):
        shard = hot_cold_shard()
        builds_before = shard.cold_builds
        shard.housekeep(0)  # evict everything (nothing pinned)
        assert shard.cfs == {}
        shard.base_cf(COLD)
        assert shard.cold_builds == builds_before + 1


class TestPinning:
    def test_pinned_cf_is_never_evicted(self):
        shard = hot_cold_shard()
        shard._pins[key_of(COLD)] = 1  # an in-flight query holds it
        shard.housekeep(0)
        assert key_of(COLD) in shard.cfs, "pinned CF survived"
        assert key_of(HOT) not in shard.cfs, "unpinned CF was evicted"

    def test_execute_pins_only_for_its_duration(self):
        shard = Shard("rns")
        shard.execute("width_reduce", {"benchmark": HOT})
        # After execute returns no pins linger, so housekeeping can
        # evict freely between queries.
        assert shard._pins == {}
        shard.housekeep(0)
        assert shard.cfs == {}

    def test_in_flight_query_base_cf_survives_housekeep(self):
        """The race the pin exists for: housekeeping fired *during* a
        query (here simulated from inside the op via a hooked build)
        must not evict the CF that query is traversing."""
        shard = Shard("rns")
        shard.base_cf(COLD)
        seen = {}
        original = shard._width_reduce

        def hooked(params):
            result = original(params)  # builds and pins HOT
            # Mid-query (before execute unpins), memory pressure strikes:
            shard.housekeep(0)
            seen["cold_evicted"] = key_of(COLD) not in shard.cfs
            seen["mine_kept"] = key_of(HOT) in shard.cfs
            return result

        shard._width_reduce = hooked
        result = shard.execute("width_reduce", {"benchmark": HOT})
        assert result["benchmark"] == HOT
        assert seen["cold_evicted"], "idle CF was evictable"
        assert seen["mine_kept"], "the executing query's CF was pinned"


class TestSnapshots:
    def test_cold_build_persists_and_reloads(self, tmp_path):
        first = Shard("rns", snapshot_dir=tmp_path)
        r1 = first.execute("width_reduce", {"benchmark": HOT})
        assert first.cold_builds == 1
        assert first.snapshot_writes == 1
        assert list(tmp_path.glob("rns-*.rbcf"))
        # A fresh shard (think: rebuilt worker process) warms from disk.
        second = Shard("rns", snapshot_dir=tmp_path)
        r2 = second.execute("width_reduce", {"benchmark": HOT})
        assert second.cold_builds == 0
        assert second.snapshot_loads == 1
        # Width results are identical; the exact merged BDD may differ
        # by algorithm 3.3's node-enumeration order (the snapshot path
        # matches the JSON payload path, not the in-memory builder).
        assert r1["max_width_before"] == r2["max_width_before"]
        assert r1["max_width_after"] == r2["max_width_after"]
        assert r1["removed_inputs"] == r2["removed_inputs"]
        # Snapshot loads themselves are deterministic.
        third = Shard("rns", snapshot_dir=tmp_path)
        r3 = third.execute("width_reduce", {"benchmark": HOT})
        assert r2["fingerprint"] == r3["fingerprint"]

    def test_corrupt_snapshot_falls_back_to_build(self, tmp_path):
        first = Shard("rns", snapshot_dir=tmp_path)
        first.base_cf(HOT)
        (path,) = tmp_path.glob("rns-*.rbcf")
        path.write_bytes(b"garbage")
        second = Shard("rns", snapshot_dir=tmp_path)
        second.base_cf(HOT)
        assert second.snapshot_loads == 0
        assert second.cold_builds == 1

    def test_corrupt_snapshot_concurrent_queries_build_once(self, tmp_path):
        """A truncated RBCF under concurrent load: both simultaneous
        queries answer correctly via the cold-build repair path, and
        batch coalescing keeps it to a *single* rebuild."""
        from repro.service.protocol import Request
        from repro.service.server import Service

        seed = Shard("rns", snapshot_dir=tmp_path)
        seed.base_cf(HOT)
        (path,) = tmp_path.glob("rns-*.rbcf")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        async def main():
            service = Service(snapshot_dir=tmp_path, result_cache_size=0)
            pump = asyncio.ensure_future(service._pump())
            try:
                reqs = [
                    Request(
                        id=f"q{i}",
                        op="width_reduce",
                        params={"benchmark": HOT},
                    )
                    for i in range(2)
                ]
                docs = await asyncio.gather(
                    *(service.handle_request(r) for r in reqs)
                )
                return docs, service.pool.get("rns")
            finally:
                service._stopping = True
                service._work.set()
                await pump
                service.close()

        docs, shard = asyncio.run(main())
        assert all(doc["ok"] for doc in docs)
        fps = {doc["result"]["fingerprint"] for doc in docs}
        assert len(fps) == 1
        assert shard.snapshot_loads == 0, "truncated snapshot must miss"
        assert shard.cold_builds == 1, "coalescing prevents a double build"

    def test_no_snapshot_dir_means_no_files(self, tmp_path):
        shard = Shard("rns")
        shard.base_cf(HOT)
        assert shard.snapshot_writes == 0
        assert list(tmp_path.iterdir()) == []

    def test_pool_threads_snapshot_dir_through(self, tmp_path):
        pool = ShardPool(snapshot_dir=tmp_path)
        pool.execute("width_reduce", {"benchmark": HOT})
        assert pool.get("rns").snapshot_writes == 1


class TestMaxAliveEnv:
    """``REPRO_MAX_ALIVE`` sizes the housekeeping ceiling (PR 9 S1)."""

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_ALIVE", raising=False)
        assert default_max_alive() == DEFAULT_MAX_ALIVE
        assert ShardPool().max_alive == DEFAULT_MAX_ALIVE

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_ALIVE", "12345")
        assert default_max_alive() == 12345
        assert ShardPool().max_alive == 12345

    def test_explicit_ceiling_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_ALIVE", "12345")
        assert ShardPool(max_alive=7).max_alive == 7

    def test_malformed_or_zero_env_is_safe(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_ALIVE", "not-a-number")
        assert default_max_alive() == DEFAULT_MAX_ALIVE
        # lo=1 clamp: 0 would make housekeep evict everything always.
        monkeypatch.setenv("REPRO_MAX_ALIVE", "0")
        assert default_max_alive() == 1

    def test_housekeep_reads_env_at_call_time(self, monkeypatch):
        shard = hot_cold_shard()
        monkeypatch.setenv("REPRO_MAX_ALIVE", "1")
        shard.housekeep()  # no explicit ceiling -> env governs
        assert shard.cfs == {}


class TestFamilyRouting:
    @pytest.mark.parametrize(
        "op,params,family",
        [
            ("width_reduce", {"benchmark": "3-5 RNS"}, "rns"),
            ("width_reduce", {"benchmark": "2-digit 3-nary to binary"}, "pnary"),
            ("width_reduce", {"benchmark": "2-digit decimal adder"}, "decimal"),
            ("cascade", {"benchmark": "40 words"}, "wordlist"),
            ("pla_reduce", {"pla": ".i 1\n"}, "pla"),
            ("width_reduce", {"benchmark": "mystery"}, "misc"),
        ],
    )
    def test_family_of(self, op, params, family):
        assert family_of(op, params) == family
