"""Daemon lifecycle over real processes: sockets, SIGKILL, drain.

These tests spawn ``python -m repro serve`` as a subprocess, talk to
it over its unix socket, kill it without warning, and prove that the
journal makes the daemon's queue durable: a restart with ``--resume
--drain-exit`` executes exactly the in-flight work and its journaled
results equal an uninterrupted run's.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.parallel.journal import Journal
from repro.service.client import SocketClient

BENCH = "3-5 RNS"
SRC = str(pathlib.Path(repro.__file__).resolve().parent.parent)


def daemon_env():
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC, env.get("PYTHONPATH")) if p
    )
    return env


def start_daemon(tmp_path, *extra):
    sock = tmp_path / "svc.sock"
    sock.unlink(missing_ok=True)  # stale socket from a killed daemon
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", str(sock), *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        cwd=tmp_path,
        env=daemon_env(),
    )
    deadline = time.monotonic() + 30
    while not sock.exists():
        if proc.poll() is not None:
            out = proc.stdout.read().decode()
            raise AssertionError(f"daemon died on start:\n{out}")
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("daemon never created its socket")
        time.sleep(0.05)
    return proc, sock


def stop_daemon(proc, sock):
    if proc.poll() is None:
        try:
            with SocketClient(sock, timeout=10) as client:
                client.call("shutdown")
        except Exception:
            proc.kill()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


class TestSocketTransport:
    def test_ping_query_stats_shutdown(self, tmp_path):
        proc, sock = start_daemon(tmp_path)
        try:
            with SocketClient(sock) as client:
                ping = client.call("ping")
                assert ping["ok"]
                assert ping["result"]["protocol"] == "repro-query-v3"
                assert ping["result"]["pid"] == proc.pid

                reply = client.call("width_reduce", {"benchmark": BENCH})
                assert reply["ok"], reply
                assert reply["meta"]["shard"] == "rns"
                assert reply["result"]["max_width_after"] <= reply["result"][
                    "max_width_before"
                ]

                stats = client.call("stats")["result"]
                assert stats["schema"] == "repro-bench-v9"
                assert stats["executed"] == 1

                bad = client.call("width_reduce", {"benchmark": "nonsense"})
                assert not bad["ok"]
                assert bad["error"]["type"] == "BenchmarkError"

                # The malformed-line error must not poison the stream.
                client._sock.sendall(b"this is not json\n")
                err = client.recv()
                assert err["ok"] is False
                assert err["error"]["type"] == "ProtocolError"
                assert client.call("ping")["ok"]
        finally:
            stop_daemon(proc, sock)
        assert proc.wait(timeout=30) == 0

    def test_cli_query_roundtrip(self, tmp_path):
        proc, sock = start_daemon(tmp_path)
        try:
            out = subprocess.run(
                [
                    sys.executable, "-m", "repro", "query", "width_reduce",
                    "--socket", str(sock), "--benchmark", BENCH,
                ],
                capture_output=True,
                text=True,
                timeout=120,
                env=daemon_env(),
            )
            assert out.returncode == 0, out.stderr
            doc = json.loads(out.stdout)
            assert doc["ok"]
            assert doc["result"]["cf"]["name"]
        finally:
            stop_daemon(proc, sock)


class TestKillRestartDurability:
    def test_sigkill_resume_drain_matches_uninterrupted_run(self, tmp_path):
        """The tentpole durability criterion, end to end.

        Queries journaled as in-flight when the daemon is SIGKILL'd are
        re-executed by ``--resume --drain-exit``, and the drained
        journal's results equal those of an identical daemon that was
        never killed.
        """
        queries = [
            {"id": "a", "op": "width_reduce", "params": {"benchmark": "3-5 RNS"}},
            {"id": "b", "op": "decompose",
             "params": {"benchmark": "3-5-7 RNS", "cut_height": 4}},
        ]

        # -- interrupted run ------------------------------------------
        kill_journal = tmp_path / "killed.journal"
        proc, sock = start_daemon(tmp_path, "--journal", str(kill_journal))
        client = SocketClient(sock)
        for doc in queries:
            client.send(doc)  # enqueue, do not wait
        # Wait until both attempts are journaled (fsync'd), then kill.
        deadline = time.monotonic() + 30
        while True:
            text = kill_journal.read_text() if kill_journal.exists() else ""
            if text.count('"type":"attempt"') >= len(queries):
                break
            assert time.monotonic() < deadline, "attempts never journaled"
            time.sleep(0.02)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        client.close()

        drained = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--journal", str(kill_journal), "--resume", "--drain-exit",
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env=daemon_env(),
        )
        assert drained.returncode == 0, drained.stderr

        # -- uninterrupted reference run ------------------------------
        clean_journal = tmp_path / "clean.journal"
        proc2, sock2 = start_daemon(tmp_path, "--journal", str(clean_journal))
        try:
            with SocketClient(sock2) as c2:
                for doc in queries:
                    reply = c2.call(doc["op"], doc["params"])
                    assert reply["ok"], reply
        finally:
            stop_daemon(proc2, sock2)

        # -- equivalence ----------------------------------------------
        with Journal(kill_journal, resume=True) as jk:
            assert jk.pending() == []  # the drain finished everything
            killed_results = {k: r.result for k, r in jk.results().items()}
        with Journal(clean_journal, resume=True) as jc:
            clean_results = {k: r.result for k, r in jc.results().items()}
        assert killed_results == clean_results
        assert len(killed_results) == len(queries)

    def test_drain_exit_is_noop_on_clean_journal(self, tmp_path):
        journal = tmp_path / "svc.journal"
        proc, sock = start_daemon(tmp_path, "--journal", str(journal))
        try:
            with SocketClient(sock) as client:
                assert client.call("width_reduce", {"benchmark": BENCH})["ok"]
        finally:
            stop_daemon(proc, sock)
        drained = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--journal", str(journal), "--resume", "--drain-exit",
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env=daemon_env(),
        )
        assert drained.returncode == 0, drained.stderr
        assert "drained 0" in drained.stdout


class TestWarmVsColdProcesses:
    def test_warm_daemon_beats_two_cold_runs(self, tmp_path):
        """Two identical queries against one daemon: the shard counter
        delta of the second shows a strictly higher computed-table hit
        rate than the first (which is exactly what two cold one-shot
        processes would each pay)."""
        proc, sock = start_daemon(tmp_path)
        try:
            with SocketClient(sock) as client:
                def rates():
                    counters = client.call("stats")["result"]["shards"].get(
                        "rns", {"counters": {}}
                    )["counters"]
                    return (
                        counters.get("cache_hits", 0),
                        counters.get("cache_misses", 0),
                    )

                assert client.call("width_reduce", {"benchmark": BENCH})["ok"]
                h1, m1 = rates()
                # A repeat without invalidation never reaches the
                # engine: it is a cross-request result-cache hit.
                repeat = client.call("width_reduce", {"benchmark": BENCH})
                assert repeat["ok"] and repeat["meta"]["cached"]
                hc, mc = rates()
                assert (hc, mc) == (h1, m1)
                # Invalidate, then repeat: now the engine runs again,
                # on warm computed tables.
                assert client.call("invalidate")["ok"]
                rerun = client.call("width_reduce", {"benchmark": BENCH})
                assert rerun["ok"] and not rerun["meta"].get("cached")
                h2, m2 = rates()
                cache = client.call("stats")["result"]["result_cache"]
                assert cache["hits"] >= 1
                assert cache["invalidations"] >= 1
        finally:
            stop_daemon(proc, sock)
        cold_rate = h1 / (h1 + m1)
        warm_rate = (h2 - h1) / ((h2 - h1) + (m2 - m1))
        assert warm_rate > cold_rate, (cold_rate, warm_rate)


class TestClientConnectRetry:
    def test_client_retries_until_socket_binds(self, tmp_path):
        """``repro query`` racing ``repro serve`` at startup is normal:
        the client retries with backoff instead of failing on the first
        connection refusal."""
        import socket as socket_mod
        import threading

        path = tmp_path / "late.sock"
        served = {}

        def bind_late():
            time.sleep(0.3)
            srv = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
            srv.bind(str(path))
            srv.listen(1)
            conn, _ = srv.accept()
            served["connected"] = True
            conn.close()
            srv.close()

        thread = threading.Thread(target=bind_late)
        thread.start()
        try:
            client = SocketClient(path, connect_timeout=10.0)
            client.close()
        finally:
            thread.join()
        assert served.get("connected")

    def test_connect_timeout_raises_service_error(self, tmp_path):
        from repro.errors import ServiceError

        t0 = time.monotonic()
        with pytest.raises(ServiceError, match="cannot connect"):
            SocketClient(tmp_path / "never.sock", connect_timeout=0.2)
        assert time.monotonic() - t0 >= 0.2

    def test_read_timeout_raises_service_error(self, tmp_path):
        """A wedged server surfaces as an error, not a client hang."""
        import socket as socket_mod

        from repro.errors import ServiceError

        path = tmp_path / "mute.sock"
        srv = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        srv.bind(str(path))
        srv.listen(1)
        try:
            client = SocketClient(path, timeout=0.2)
            client.send({"id": "x", "op": "ping", "params": {}})
            with pytest.raises(ServiceError, match="timed out"):
                client.recv()
            client.close()
        finally:
            srv.close()


class TestWorkerProcessDurability:
    def test_sigkill_one_worker_daemon_recovers_transparently(self, tmp_path):
        """The PR 8 durability criterion: SIGKILL of a single worker
        process (not the daemon) is invisible to clients — the daemon
        rebuilds the worker and the next query succeeds."""
        proc, sock = start_daemon(tmp_path, "--workers", "2")
        try:
            with SocketClient(sock, timeout=120) as client:
                first = client.call("width_reduce", {"benchmark": BENCH})
                assert first["ok"], first
                stats = client.call("stats")["result"]
                assert stats["mode"] == "multi-process"
                worker = stats["workers"]["processes"]["rns"]
                assert worker["alive"] and worker["pid"] != proc.pid
                os.kill(worker["pid"], signal.SIGKILL)

                # Different params so the result cache cannot mask a
                # broken engine path (cache was invalidated anyway).
                again = client.call(
                    "width_reduce", {"benchmark": BENCH, "sift": False}
                )
                assert again["ok"], again
                after = client.call("stats")["result"]
                rebuilt = after["workers"]["processes"]["rns"]
                assert rebuilt["alive"]
                assert rebuilt["pid"] != worker["pid"]
                assert rebuilt["restarts"] == 1
                assert after["result_cache"]["invalidations"] >= 1
        finally:
            stop_daemon(proc, sock)
        assert proc.wait(timeout=30) == 0


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"), reason="needs SIGKILL")
def test_sigkill_available():
    """Guard: the durability tests above assume a POSIX SIGKILL."""
    assert signal.SIGKILL
