"""In-process daemon integration: warmth, batching, parity, budgets.

These tests drive a :class:`repro.service.server.Service` inside one
``asyncio.run`` — no subprocesses, no real sockets unless stated — so
they pin the semantics (warm computed-table reuse, batch coalescing,
CLI parity via payload fingerprints) without process-management
flakiness.  The subprocess lifecycle (SIGKILL, resume, drain) lives in
``test_lifecycle.py``.
"""

import asyncio
import json

from repro.bdd.io import charfunction_payload, payload_fingerprint
from repro.bdd.transfer import extract_charfunction
from repro.cf.charfun import CharFunction
from repro.benchfns.registry import get_benchmark
from repro.parallel.journal import Journal
from repro.reduce import algorithm_3_3, reduce_support
from repro.service.protocol import Request
from repro.service.server import Service

BENCH = "3-5 RNS"  # small: builds in milliseconds, still non-trivial


def wr_request(rid: str, benchmark: str = BENCH, **extra) -> Request:
    return Request(id=rid, op="width_reduce", params={"benchmark": benchmark, **extra})


def run_service(coro_fn, **service_kwargs):
    """Run ``coro_fn(service)`` against a fresh listener-less daemon."""

    async def main():
        service = Service(**service_kwargs)
        pump = asyncio.ensure_future(service._pump())
        try:
            return await coro_fn(service)
        finally:
            service._stopping = True
            service._work.set()
            await pump
            service.close()

    return asyncio.run(main())


class TestWarmShards:
    def test_second_identical_query_is_warmer(self):
        """The acceptance criterion: serving the same query twice from
        one warm shard shows a higher computed-table hit rate than the
        cold run — the manager (computed tables, tt memo) persisted.
        The result cache is disabled here so the repeat actually
        reaches the engine (its zero-pass behaviour has its own test)."""

        async def scenario(service):
            first = await service.handle_request(wr_request("q1"))
            counters_cold = dict(service.pool.get("rns").counters)
            second = await service.handle_request(wr_request("q2"))
            counters_warm = service.pool.get("rns").counters
            return first, second, counters_cold, counters_warm

        first, second, cold, warm = run_service(
            scenario, result_cache_size=0
        )
        assert first["ok"] and second["ok"]
        assert first["result"]["fingerprint"] == second["result"]["fingerprint"]
        cold_lookups = cold["cache_hits"] + cold["cache_misses"]
        warm_hits = warm["cache_hits"] - cold["cache_hits"]
        warm_misses = warm["cache_misses"] - cold["cache_misses"]
        cold_rate = cold["cache_hits"] / cold_lookups
        warm_rate = warm_hits / (warm_hits + warm_misses)
        assert warm_rate > cold_rate + 0.2, (cold_rate, warm_rate)

    def test_shard_stats_in_v7_schema(self):
        async def scenario(service):
            await service.handle_request(wr_request("q1"))
            return service.stats()

        stats = run_service(scenario)
        assert stats["schema"] == "repro-bench-v9"
        assert stats["schema_version"] == 9
        assert stats["mode"] == "in-process"
        cache = stats["result_cache"]
        assert set(cache) >= {"hits", "misses", "invalidations", "epoch"}
        shard = stats["shards"]["rns"]
        assert shard["queries"] == 1
        assert shard["cold_builds"] == 1
        for key in ("op_calls", "kernel_steps", "cache_hits", "tt_fast_hits"):
            assert key in shard["counters"]

    def test_families_do_not_share_shards(self):
        async def scenario(service):
            await service.handle_request(wr_request("q1", "3-5 RNS"))
            await service.handle_request(
                Request(
                    id="q2",
                    op="width_reduce",
                    params={"benchmark": "2-digit 3-nary to binary"},
                )
            )
            return service.stats()["shards"]

        shards = run_service(scenario)
        assert set(shards) == {"rns", "pnary"}


class TestBatching:
    def test_concurrent_identical_queries_coalesce(self):
        async def scenario(service):
            reqs = [wr_request(f"q{i}") for i in range(4)]
            docs = await asyncio.gather(
                *(service.handle_request(r) for r in reqs)
            )
            return docs, service

        docs, service = run_service(lambda s: scenario(s))
        assert all(doc["ok"] for doc in docs)
        ids = {doc["id"] for doc in docs}
        assert ids == {"q0", "q1", "q2", "q3"}  # each waiter answered
        fingerprints = {doc["result"]["fingerprint"] for doc in docs}
        assert len(fingerprints) == 1
        assert any(doc["meta"]["batched"] for doc in docs)

    def test_batched_queries_run_engine_once(self):
        async def scenario(service):
            reqs = [wr_request(f"q{i}") for i in range(4)]
            await asyncio.gather(*(service.handle_request(r) for r in reqs))
            return service

        service = run_service(lambda s: scenario(s))
        assert service.queries_total == 4
        assert service.batched_total >= 1
        assert service.executed + service.batched_total == 4

    def test_different_params_do_not_coalesce(self):
        async def scenario(service):
            docs = await asyncio.gather(
                service.handle_request(wr_request("a", "3-5 RNS")),
                service.handle_request(wr_request("b", "3-7 RNS")),
            )
            return docs, service.executed

        docs, executed = run_service(lambda s: scenario(s))
        assert executed == 2
        fps = {doc["result"]["fingerprint"] for doc in docs}
        assert len(fps) == 2


class TestCliParity:
    def test_served_payload_matches_direct_pipeline(self):
        """A daemon-served CF payload fingerprint equals the one-shot
        in-process pipeline's (build → sift → reduce → Alg 3.3 →
        extract), i.e. warm serving changes performance, not results."""

        async def scenario(service):
            return await service.handle_request(
                wr_request("q1", BENCH, payload=True)
            )

        doc = run_service(scenario)
        assert doc["ok"]
        served = doc["result"]

        cf = CharFunction.from_isf(get_benchmark(BENCH).build())
        cf.sift(cost="auto")
        reduced, _removed = reduce_support(cf)
        reduced, _stats = algorithm_3_3(reduced)
        payload = charfunction_payload(extract_charfunction(reduced))
        assert served["fingerprint"] == payload_fingerprint(payload)
        assert served["payload"] == payload

    def test_payload_json_roundtrip(self):
        """Served payloads survive the wire (they are plain JSON)."""
        from repro.bdd.io import load_charfunction_payload

        async def scenario(service):
            return await service.handle_request(
                wr_request("q1", BENCH, payload=True)
            )

        doc = run_service(scenario)
        wire = json.loads(json.dumps(doc["result"]["payload"]))
        cf = load_charfunction_payload(wire)
        assert payload_fingerprint(charfunction_payload(cf)) == doc["result"][
            "fingerprint"
        ]


class TestStarvation:
    def test_cheap_queries_overtake_an_expensive_one(self):
        """Regression: with an expensive query queued first, later cheap
        queries are answered before it finishes — and the expensive one
        still completes (no starvation in either direction)."""
        order: list[str] = []

        async def scenario(service):
            # Stall the pump so all three queries are queued before the
            # worker picks anything (admission order != arrival order).
            big = wr_request("big", "5-7-11 RNS")
            small1 = wr_request("s1", "3-5 RNS")
            small2 = Request(
                id="s2", op="decompose",
                params={"benchmark": "3-5 RNS", "cut_height": 3},
            )

            async def tracked(req):
                doc = await service.handle_request(req)
                order.append(req.id)
                return doc

            docs = await asyncio.gather(
                tracked(big), tracked(small1), tracked(small2)
            )
            return docs

        docs = run_service(scenario)
        assert all(doc["ok"] for doc in docs)
        assert order[-1] == "big"  # expensive waited, cheap ones first
        assert set(order) == {"big", "s1", "s2"}  # ...but it completed


class TestBudgetsAndErrors:
    def test_request_budget_violation_is_an_error_response(self):
        async def scenario(service):
            return await service.handle_request(
                Request(
                    id="tiny",
                    op="width_reduce",
                    params={"benchmark": "5-7-11 RNS"},
                    budget={"max_steps": 10},
                )
            )

        doc = run_service(scenario)
        assert doc["ok"] is False
        assert doc["error"]["type"] in ("ResourceLimitError", "DeadlineError")

    def test_exhausted_tenant_denied_next_request(self):
        async def scenario_inner(service):
            first = await service.handle_request(
                Request(
                    id="q1", op="width_reduce",
                    params={"benchmark": BENCH}, tenant="t1",
                )
            )
            # The tenant's ledger records the steps q1 actually spent.
            budget = service.admission.tenant_budget("t1")
            assert budget.steps > 0
            # Simulate a long history: spend the rest of the ceiling.
            budget.steps = budget.max_steps + 1
            second = await service.handle_request(
                Request(
                    id="q2", op="width_reduce",
                    params={"benchmark": "3-7 RNS"}, tenant="t1",
                )
            )
            # Another tenant is unaffected by t1's exhaustion.
            other = await service.handle_request(
                Request(
                    id="q3", op="width_reduce",
                    params={"benchmark": BENCH}, tenant="t2",
                )
            )
            return first, second, other

        async def main():
            service = Service(tenant_max_steps=10**9)
            pump = asyncio.ensure_future(service._pump())
            try:
                return await scenario_inner(service)
            finally:
                service._stopping = True
                service._work.set()
                await pump
                service.close()

        first, second, other = asyncio.run(main())
        assert first["ok"] is True
        assert second["ok"] is False
        assert second["error"]["type"] == "ServiceError"
        assert "exhausted" in second["error"]["message"]
        assert other["ok"] is True

    def test_tenant_budget_interrupts_mid_flight(self):
        """A query that crosses its tenant's cumulative ceiling is cut
        off by the governor (and the manager stays usable — a later
        query for another tenant succeeds)."""

        async def main():
            service = Service(tenant_max_steps=100)
            pump = asyncio.ensure_future(service._pump())
            try:
                cut = await service.handle_request(
                    Request(
                        id="q1", op="width_reduce",
                        params={"benchmark": "5-7-11 RNS"}, tenant="starved",
                    )
                )
                healthy = await service.handle_request(
                    Request(
                        id="q2", op="width_reduce",
                        params={"benchmark": BENCH}, tenant="other",
                    )
                )
                return cut, healthy
            finally:
                service._stopping = True
                service._work.set()
                await pump
                service.close()

        cut, healthy = asyncio.run(main())
        assert cut["ok"] is False
        assert cut["error"]["type"] == "ResourceLimitError"
        # The daemon survived the mid-flight interruption and answered
        # the next request (which runs under its own 100-step ceiling,
        # so either outcome is legitimate — what matters is an answer).
        assert healthy["id"] == "q2"

    def test_engine_error_does_not_kill_the_pump(self):
        async def scenario(service):
            bad = await service.handle_request(
                wr_request("bad", "unknown benchmark")
            )
            good = await service.handle_request(wr_request("good"))
            return bad, good

        bad, good = run_service(scenario)
        assert bad["ok"] is False
        assert bad["error"]["type"] == "BenchmarkError"
        assert good["ok"] is True


class TestJournalIntegration:
    def test_attempts_and_results_journaled(self, tmp_path):
        jpath = tmp_path / "svc.journal"

        async def main():
            service = Service(journal_path=jpath)
            pump = asyncio.ensure_future(service._pump())
            try:
                return await service.handle_request(wr_request("q1"))
            finally:
                service._stopping = True
                service._work.set()
                await pump
                service.close()

        doc = asyncio.run(main())
        assert doc["ok"]
        journal = Journal(jpath, resume=True)
        try:
            assert journal.pending() == []
            results = journal.results()
            (key,) = results
            assert key == doc["meta"]["key"]
            assert results[key].result["fingerprint"] == doc["result"][
                "fingerprint"
            ]
        finally:
            journal.close()

    def test_tt_override_rides_the_journal(self, tmp_path):
        """A journaled request's tt/budget overrides are part of its
        doc, so a replayed execution uses the same settings."""
        jpath = tmp_path / "svc.journal"

        async def main():
            service = Service(journal_path=jpath)
            try:
                service._enqueue(
                    Request(
                        id="q1",
                        op="width_reduce",
                        params={"benchmark": BENCH},
                        tt={"fastpath": False},
                    )
                )
            finally:
                service.close()

        asyncio.run(main())
        journal = Journal(jpath, resume=True)
        try:
            (record,) = journal.pending()
            assert record["doc"]["tt"] == {"fastpath": False}
            replayed = Request.from_doc(record["doc"])
            assert replayed.tt == {"fastpath": False}
        finally:
            journal.close()
