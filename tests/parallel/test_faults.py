"""Failure-matrix tests for the fault-tolerant executor.

Faults are injected deterministically through ``REPRO_FAULT_INJECT``
(see :mod:`repro.parallel.tasks`): worker crashes (BrokenProcessPool +
pool rebuild), hangs hitting the row deadline (pool kill + requeue),
unpicklable results (final-attempt in-process fallback), and plain
exceptions (retry then quarantine).  Throughout, the invariant is that
``run_tasks`` never loses a row: ``len(results) + len(failures) ==
len(tasks)``, and it never raises for a row failure.
"""

import pytest

from repro.bdd import stats
from repro.errors import FaultInjected
from repro.parallel import (
    CostModel,
    execute_task,
    run_tasks,
    table4_task,
    table5_task,
)
from repro.parallel.tasks import _parse_fault_spec

ROWS = [table4_task("3-5 RNS"), table4_task("3-7 RNS"), table5_task("3-5 RNS")]


def _outcome_keys(report):
    return sorted(
        [r.key for r in report.results] + [f.key for f in report.failures]
    )


@pytest.fixture
def fault_env(monkeypatch, tmp_path):
    """Configure injection for one test; always cleaned up."""

    def configure(spec, *, hang_s=None, state=True):
        monkeypatch.setenv("REPRO_FAULT_INJECT", spec)
        if state:
            monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "fault-state"))
            (tmp_path / "fault-state").mkdir(exist_ok=True)
        if hang_s is not None:
            monkeypatch.setenv("REPRO_FAULT_HANG_S", str(hang_s))

    return configure


class TestSpecParsing:
    def test_modes_keys_counts(self):
        spec = "crash=table4:foo;hang=table5:a b@2; raise = t6:x "
        assert _parse_fault_spec(spec) == [
            ("crash", "table4:foo", None),
            ("hang", "table5:a b", 2),
            ("raise", "t6:x", None),
        ]

    def test_garbage_entries_skipped(self):
        assert _parse_fault_spec(";;no-equals;=;") == [("", "", None)]

    def test_empty(self):
        assert _parse_fault_spec("") == []


class TestInjectedExceptions:
    def test_raise_fires_in_process(self, fault_env, monkeypatch):
        fault_env("raise=table4:3-5 RNS", state=False)
        monkeypatch.delenv("REPRO_FAULT_PARENT", raising=False)
        with pytest.raises(FaultInjected):
            execute_task(table4_task("3-5 RNS"))

    def test_exhausted_retries_quarantine(self, fault_env):
        fault_env("raise=table4:3-5 RNS", state=False)
        report = run_tasks(
            ROWS, jobs=1, cost_model=CostModel(), retries=1, backoff_s=0.01
        )
        assert len(report.results) == 2
        (failure,) = report.failures
        assert failure.key == "table4:3-5 RNS"
        assert failure.status == "failed"
        assert failure.attempts == 2
        assert "FaultInjected" in failure.error
        assert failure.traceback_digest
        assert report.retries == 1

    def test_count_limited_fault_recovers(self, fault_env):
        # Fires once, then the retry succeeds: no quarantine, one retry.
        fault_env("raise=table4:3-5 RNS@1")
        report = run_tasks(
            ROWS, jobs=1, cost_model=CostModel(), retries=2, backoff_s=0.01
        )
        assert not report.failures
        assert len(report.results) == len(ROWS)
        assert report.retries == 1


class TestCrashMidSweep:
    def test_crash_rebuilds_pool_and_retry_succeeds(self, fault_env):
        # The crash kills a worker (BrokenProcessPool); the pool is
        # rebuilt and the count-limited fault does not fire again.
        fault_env("crash=table4:3-5 RNS@1")
        report = run_tasks(
            ROWS, jobs=2, cost_model=CostModel(), retries=2, backoff_s=0.01
        )
        assert not report.failures
        assert sorted(r.key for r in report.results) == sorted(t.key for t in ROWS)
        assert report.retries >= 1  # at least the crashed row was charged
        assert report.stats_totals["rows_completed"] == len(ROWS)

    def test_persistent_crash_quarantines_row_only(self, fault_env):
        fault_env("crash=table4:3-5 RNS", state=False)
        report = run_tasks(
            ROWS, jobs=2, cost_model=CostModel(), retries=1, backoff_s=0.01
        )
        # Non-faulted rows complete even though the pool broke mid-sweep.
        assert sorted(r.key for r in report.results) == [
            "table4:3-7 RNS",
            "table5:3-5 RNS",
        ]
        (failure,) = report.failures
        assert failure.key == "table4:3-5 RNS"
        # Last attempt ran in-process, where the crash degrades to a
        # FaultInjected raise — so the terminal status is "failed".
        assert failure.status == "failed"
        assert failure.attempts == 2

    def test_no_silent_row_loss(self, fault_env):
        # Regression: the executor must account for every submitted
        # task even when workers die; no row may silently vanish.
        fault_env("crash=table4:3-5 RNS", state=False)
        report = run_tasks(
            ROWS, jobs=2, cost_model=CostModel(), retries=0, backoff_s=0.01
        )
        assert len(report.results) + len(report.failures) == len(ROWS)
        assert _outcome_keys(report) == sorted(t.key for t in ROWS)


class TestHangAndDeadline:
    def test_hang_hits_deadline_and_quarantines(self, fault_env):
        fault_env("hang=table4:3-5 RNS", hang_s=600, state=False)
        report = run_tasks(
            ROWS,
            jobs=2,
            cost_model=CostModel(),
            timeout=3.0,
            retries=0,
            backoff_s=0.01,
        )
        (failure,) = report.failures
        assert failure.key == "table4:3-5 RNS"
        assert failure.status == "timeout"
        assert failure.attempts == 1
        assert failure.elapsed_s >= 3.0
        # Innocent inflight rows were requeued uncharged and completed.
        assert sorted(r.key for r in report.results) == [
            "table4:3-7 RNS",
            "table5:3-5 RNS",
        ]
        assert report.retries == 0

    def test_inline_deadline_at_jobs_1(self, fault_env):
        fault_env("hang=table4:3-5 RNS", hang_s=600, state=False)
        # In the parent the hang degrades to a raise, so this exercises
        # the jobs=1 retry loop, not the cooperative deadline itself.
        report = run_tasks(
            [table4_task("3-5 RNS")],
            jobs=1,
            cost_model=CostModel(),
            timeout=2.0,
            retries=0,
            backoff_s=0.01,
        )
        assert len(report.failures) == 1


class TestPickleFallback:
    def test_final_attempt_runs_in_process(self, fault_env):
        # The worker computes the row but cannot ship it back; the
        # final attempt runs in the parent, where nothing is pickled.
        fault_env("pickle=table4:3-5 RNS", state=False)
        report = run_tasks(
            [table4_task("3-5 RNS"), table4_task("3-7 RNS")],
            jobs=2,
            cost_model=CostModel(),
            retries=1,
            backoff_s=0.01,
        )
        assert not report.failures
        assert sorted(r.key for r in report.results) == [
            "table4:3-5 RNS",
            "table4:3-7 RNS",
        ]
        assert report.retries == 1


class TestPartialAggregation:
    def test_completed_rows_match_clean_sequential_totals(self, fault_env):
        fault_env("crash=table4:3-5 RNS@1")
        faulty = run_tasks(
            ROWS,
            jobs=2,
            cost_model=CostModel(),
            retries=2,
            backoff_s=0.01,
            merge_stats=False,
        )
        assert not faulty.failures

    def test_totals_additive_over_completed_rows(self, fault_env, monkeypatch):
        # One row quarantined: the remaining rows' additive totals must
        # equal a clean jobs=1 sweep over exactly those rows.
        fault_env("raise=table4:3-5 RNS", state=False)
        faulty = run_tasks(
            ROWS, jobs=1, cost_model=CostModel(), retries=0, backoff_s=0.01
        )
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        survivors = [t for t in ROWS if t.key != "table4:3-5 RNS"]
        clean = run_tasks(survivors, jobs=1, cost_model=CostModel())
        for key in stats.ADDITIVE_KEYS:
            assert faulty.stats_totals[key] == clean.stats_totals[key]
        assert faulty.stats_totals["rows_failed"] == 1
        assert clean.stats_totals["rows_failed"] == 0

    def test_failures_and_status_in_record(self, fault_env):
        fault_env("raise=table4:3-5 RNS", state=False)
        report = run_tasks(
            ROWS, jobs=1, cost_model=CostModel(), retries=0, backoff_s=0.01
        )
        record = report.to_record()
        assert record["failures"][0]["key"] == "table4:3-5 RNS"
        assert record["failures"][0]["status"] == "failed"
        assert record["stats_totals"]["rows_failed"] == 1
        assert set(record["row_status"].values()) == {"ok"}


class TestBudgetRows:
    def test_node_limit_row_reports_budget_exceeded(self):
        report = run_tasks(
            [table4_task("3-5 RNS", node_limit=50), table4_task("3-7 RNS")],
            jobs=1,
            cost_model=CostModel(),
            retries=0,
        )
        assert not report.failures  # a budget row is an answer, not a crash
        by_key = {r.key: r for r in report.results}
        limited = by_key["table4:3-5 RNS"]
        assert limited.status == "budget_exceeded"
        assert limited.result is None
        assert "node budget" in limited.error
        assert by_key["table4:3-7 RNS"].status == "ok"
        # Budget rows are excluded from .rows but counted as degraded.
        assert len(report.rows) == 1
        assert report.stats_totals["rows_degraded"] == 1

    def test_node_limit_row_in_worker_process(self):
        report = run_tasks(
            [table4_task("3-5 RNS", node_limit=50), table4_task("3-7 RNS")],
            jobs=2,
            cost_model=CostModel(),
            retries=0,
        )
        by_key = {r.key: r for r in report.results}
        assert by_key["table4:3-5 RNS"].status == "budget_exceeded"
        assert by_key["table4:3-7 RNS"].status == "ok"

    def test_generous_limit_unaffected(self):
        bounded = run_tasks(
            [table4_task("3-5 RNS", node_limit=10_000_000)],
            jobs=1,
            cost_model=CostModel(),
        )
        (result,) = bounded.results
        assert result.status == "ok"
        assert result.result is not None
