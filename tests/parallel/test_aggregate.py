"""Cross-process stats aggregation: N workers must sum to the jobs=1 run.

This is the pinned contract of the ISSUE 3 satellite: on a fixed
mini-sweep, the additive engine counters aggregated from worker
processes equal the totals of the same sweep run in-process.
"""

import pytest

from repro.bdd import stats
from repro.parallel import CostModel, run_tasks, table4_task, table5_task

MINI = [
    table4_task("3-5 RNS", verify=True),
    table4_task("2-digit 3-nary to binary", verify=True),
    table5_task("3-5 RNS", verify=True),
]


@pytest.fixture(scope="module")
def sweeps():
    sequential = run_tasks(MINI, jobs=1, cost_model=CostModel())
    parallel = run_tasks(MINI, jobs=2, cost_model=CostModel(), merge_stats=False)
    return sequential, parallel


class TestAggregationEquality:
    def test_additive_totals_equal(self, sweeps):
        sequential, parallel = sweeps
        for key in stats.ADDITIVE_KEYS:
            assert sequential.stats_totals[key] == parallel.stats_totals[key], key

    def test_totals_are_sums_of_task_deltas(self, sweeps):
        _, parallel = sweeps
        for key in stats.ADDITIVE_KEYS:
            assert parallel.stats_totals[key] == sum(
                r.stats_delta[key] for r in parallel.results
            )

    def test_peak_is_max_of_task_peaks(self, sweeps):
        _, parallel = sweeps
        assert parallel.stats_totals["peak_nodes"] == max(
            r.stats_delta["peak_nodes"] for r in parallel.results
        )

    def test_work_actually_happened(self, sweeps):
        sequential, _ = sweeps
        assert sequential.stats_totals["op_calls"] > 0
        assert sequential.stats_totals["kernel_steps"] > 0


class TestMergeWorkerTotals:
    def test_merge_reflected_in_snapshot(self):
        before = stats.snapshot()
        delta = {key: 11 for key in stats.ADDITIVE_KEYS}
        delta["peak_nodes"] = 1
        stats.merge_worker_totals(delta)
        after = stats.snapshot()
        try:
            for key in stats.ADDITIVE_KEYS:
                assert after[key] - before[key] == 11
        finally:
            # Undo so other tests see unchanged engine-wide counters.
            for key in stats.ADDITIVE_KEYS:
                stats.WORKER_TOTALS[key] -= 11

    def test_executor_merges_for_parallel_runs(self):
        before = stats.snapshot()
        report = run_tasks(
            [table4_task("3-5 RNS")], jobs=2, cost_model=CostModel()
        )
        after = stats.snapshot()
        assert (
            after["op_calls"] - before["op_calls"]
            >= report.stats_totals["op_calls"]
        )

    def test_counter_delta_shape(self):
        before = {key: 5 for key in stats.ADDITIVE_KEYS}
        before["peak_nodes"] = 100
        after = {key: 9 for key in stats.ADDITIVE_KEYS}
        after["peak_nodes"] = 70
        delta = stats.counter_delta(before, after)
        for key in stats.ADDITIVE_KEYS:
            assert delta[key] == 4
        # Peaks don't difference: report the absolute peak seen after.
        assert delta["peak_nodes"] == 70
