"""Kill-resume equivalence tests for the sweep journal.

The contract under test: a sweep killed at *any* point (simulated with
the ``abort`` fault mode, which ``os._exit``s even in the parent) can
be restarted with ``resume=True`` and produces a report equivalent to
an uninterrupted run — same row fingerprints, same additive engine
totals — without re-executing the journaled rows.  A torn final record
(the only damage an fsync'd append-only file can take) is truncated on
open with the damaged bytes kept in ``<journal>.bad``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.bdd import stats
from repro.errors import JournalError, ReproError
from repro.parallel import (
    CostModel,
    run_tasks,
    table4_task,
    table5_task,
)
from repro.parallel.journal import (
    JOURNAL_FORMAT,
    RESUMABLE_STATUSES,
    Journal,
    config_hash,
)
from repro.parallel.tasks import execute_task, row_fingerprint

ROWS = [table4_task("3-5 RNS"), table4_task("3-7 RNS"), table5_task("3-5 RNS")]

REPO_ROOT = Path(__file__).resolve().parents[2]


def read_records(path) -> list[dict]:
    return [json.loads(line) for line in Path(path).read_text().splitlines()]


class TestConfigHash:
    def test_stable_for_equal_tasks(self):
        assert config_hash(table4_task("3-5 RNS")) == config_hash(
            table4_task("3-5 RNS")
        )

    def test_differs_for_options(self):
        assert config_hash(table4_task("3-5 RNS")) != config_hash(
            table4_task("3-5 RNS", verify=True)
        )

    def test_differs_for_name(self):
        assert config_hash(table4_task("3-5 RNS")) != config_hash(
            table4_task("3-7 RNS")
        )


class TestJournalFile:
    def test_fresh_journal_has_checksummed_header(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with Journal(path):
            pass
        (header,) = read_records(path)
        assert header["type"] == "header"
        assert header["format"] == JOURNAL_FORMAT
        assert "crc" in header

    def test_records_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        task = ROWS[0]
        result = execute_task(task)
        with Journal(path) as journal:
            journal.record_attempt(task, 1)
            journal.record_result(task, result)
        with Journal(path, resume=True) as journal:
            replayed = journal.resumable([task])
        assert list(replayed) == [0]
        assert replayed[0].key == task.key
        assert row_fingerprint(replayed[0].result) == row_fingerprint(result.result)

    def test_attempt_without_result_reruns(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with Journal(path) as journal:
            journal.record_attempt(ROWS[0], 1)
        with Journal(path, resume=True) as journal:
            assert journal.resumable(ROWS) == {}

    def test_config_mismatch_warns_and_reruns(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        task = ROWS[0]
        with Journal(path) as journal:
            journal.record_result(task, execute_task(task))
        changed = table4_task("3-5 RNS", verify=True)
        with Journal(path, resume=True) as journal:
            with pytest.warns(UserWarning, match="different configuration"):
                assert journal.resumable([changed]) == {}

    def test_torn_tail_truncated_and_quarantined(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        task = ROWS[0]
        with Journal(path) as journal:
            journal.record_result(task, execute_task(task))
        intact = path.read_bytes()
        # Simulate a kill mid-append: a partial record with no newline.
        path.write_bytes(intact + b'{"type":"result","key":"tab')
        with pytest.warns(UserWarning, match="torn tail"):
            with Journal(path, resume=True) as journal:
                assert journal.tail_truncated
                assert list(journal.resumable([task])) == [0]
        bad = path.with_name(path.name + ".bad")
        assert bad.read_bytes() == b'{"type":"result","key":"tab'
        # After truncation the journal is byte-identical to the intact
        # prefix plus whatever the resumed open appended (nothing here).
        assert path.read_bytes() == intact

    def test_corrupt_crc_truncates_from_there(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with Journal(path) as journal:
            journal.record_attempt(ROWS[0], 1)
            journal.record_attempt(ROWS[1], 1)
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a byte inside the second record's body; its crc fails.
        damaged = lines[1].replace(b'"attempt":1', b'"attempt":9')
        path.write_bytes(lines[0] + damaged + lines[2])
        with pytest.warns(UserWarning, match="torn tail"):
            with Journal(path, resume=True) as journal:
                # Only the header survived; both attempts are gone.
                assert journal.records_recovered == 0

    def test_no_valid_header_refuses_resume(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text("this is not a journal\n")
        with pytest.raises(JournalError, match="no valid"):
            Journal(path, resume=True)

    def test_resume_false_starts_over(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with Journal(path) as journal:
            journal.record_result(ROWS[0], execute_task(ROWS[0]))
        with Journal(path) as journal:  # resume defaults to False
            assert journal.resumable(ROWS) == {}
        (header,) = read_records(path)
        assert header["type"] == "header"


class TestRunTasksResume:
    def test_resume_requires_journal(self):
        with pytest.raises(ReproError, match="requires a journal"):
            run_tasks(ROWS, jobs=1, resume=True)

    def test_full_then_resume_skips_everything(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = run_tasks(ROWS, jobs=1, cost_model=CostModel(), journal=path)
        assert first.rows_resumed == 0
        assert first.journal_path == str(path)
        resumed = run_tasks(
            ROWS, jobs=1, cost_model=CostModel(), journal=path, resume=True
        )
        assert resumed.rows_resumed == len(ROWS)
        assert resumed.stats_totals["rows_resumed"] == len(ROWS)
        assert not resumed.failures
        assert [row_fingerprint(r) for r in resumed.rows] == [
            row_fingerprint(r) for r in first.rows
        ]
        for key in stats.ADDITIVE_KEYS:
            assert resumed.stats_totals[key] == first.stats_totals[key]
        # The resumed run journaled nothing new: no attempt record for
        # any row may follow the first run's records.
        attempts = [r for r in read_records(path) if r["type"] == "attempt"]
        assert len(attempts) == len(ROWS)

    def test_resume_skips_pool_dispatch_at_jobs_n(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        run_tasks(ROWS, jobs=1, cost_model=CostModel(), journal=path)
        resumed = run_tasks(
            ROWS, jobs=2, cost_model=CostModel(), journal=path, resume=True
        )
        assert resumed.rows_resumed == len(ROWS)
        assert len(resumed.results) == len(ROWS)
        # Schedule still lists every row (resumed rows keep their slot).
        assert sorted(resumed.schedule) == sorted(t.key for t in ROWS)

    def test_journal_records_failures(self, tmp_path, monkeypatch):
        path = tmp_path / "sweep.jsonl"
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise=table4:3-5 RNS")
        report = run_tasks(
            ROWS, jobs=1, cost_model=CostModel(), retries=0,
            backoff_s=0.01, journal=path,
        )
        assert len(report.failures) == 1
        failures = [r for r in read_records(path) if r["type"] == "failure"]
        assert failures[0]["key"] == "table4:3-5 RNS"
        assert failures[0]["status"] == "failed"
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        # The quarantined row re-runs on resume; the journaled rows don't.
        resumed = run_tasks(
            ROWS, jobs=1, cost_model=CostModel(), journal=path, resume=True
        )
        assert resumed.rows_resumed == 2
        assert not resumed.failures
        assert len(resumed.results) == len(ROWS)


KILL_SCRIPT = """\
import sys
from repro.parallel import CostModel, run_tasks, table4_task, table5_task

ROWS = [table4_task("3-5 RNS"), table4_task("3-7 RNS"), table5_task("3-5 RNS")]
run_tasks(ROWS, jobs=1, cost_model=CostModel(), journal=sys.argv[1])
"""


class TestKillResumeEquivalence:
    """The acceptance scenario: kill a sweep mid-run, resume, compare."""

    def run_killed_sweep(self, tmp_path, abort_key: str) -> Path:
        journal = tmp_path / "sweep.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_FAULT_INJECT"] = f"abort={abort_key}"
        env.pop("REPRO_FAULT_PARENT", None)
        proc = subprocess.run(
            [sys.executable, "-c", KILL_SCRIPT, str(journal)],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 32, proc.stderr  # died by os._exit(32)
        return journal

    def test_killed_sweep_resumes_without_recompute(self, tmp_path):
        # jobs=1 executes in submission order, so aborting the last row
        # guarantees the first two rows were journaled before the kill.
        journal = self.run_killed_sweep(tmp_path, "table5:3-5 RNS")
        records = read_records(journal)
        done = {r["key"] for r in records if r["type"] == "result"}
        assert done == {"table4:3-5 RNS", "table4:3-7 RNS"}

        resumed = run_tasks(
            ROWS, jobs=1, cost_model=CostModel(), journal=journal, resume=True
        )
        assert resumed.rows_resumed == 2
        assert not resumed.failures
        assert len(resumed.results) == len(ROWS)
        # No journaled row was re-attempted: exactly one new attempt
        # record (the killed row) follows the pre-kill records.
        new_attempts = [
            r for r in read_records(journal) if r["type"] == "attempt"
        ][len([r for r in records if r["type"] == "attempt"]):]
        assert [r["key"] for r in new_attempts] == ["table5:3-5 RNS"]

        clean = run_tasks(ROWS, jobs=1, cost_model=CostModel())
        assert [row_fingerprint(r) for r in resumed.rows] == [
            row_fingerprint(r) for r in clean.rows
        ]
        for key in stats.ADDITIVE_KEYS:
            assert resumed.stats_totals[key] == clean.stats_totals[key]

    def test_kill_on_first_row_resumes_zero(self, tmp_path):
        journal = self.run_killed_sweep(tmp_path, "table4:3-5 RNS")
        resumed = run_tasks(
            ROWS, jobs=1, cost_model=CostModel(), journal=journal, resume=True
        )
        assert resumed.rows_resumed == 0
        assert not resumed.failures
        assert len(resumed.results) == len(ROWS)


class TestResumableStatuses:
    def test_budget_exceeded_rows_resume(self, tmp_path):
        # A budget row is an answer, not a crash: journaled and replayed.
        assert "budget_exceeded" in RESUMABLE_STATUSES
        path = tmp_path / "sweep.jsonl"
        tasks = [table4_task("3-5 RNS", node_limit=50)]
        first = run_tasks(tasks, jobs=1, cost_model=CostModel(), journal=path)
        assert first.results[0].status == "budget_exceeded"
        resumed = run_tasks(
            tasks, jobs=1, cost_model=CostModel(), journal=path, resume=True
        )
        assert resumed.rows_resumed == 1
        assert resumed.results[0].status == "budget_exceeded"

class TestCompaction:
    def test_latest_result_wins_and_attempts_drop(self, tmp_path):
        from repro.parallel import compact_journal

        path = tmp_path / "sweep.jsonl"
        task = ROWS[0]
        first = execute_task(task)
        second = execute_task(task)
        with Journal(path) as journal:
            journal.record_attempt(task, 1)
            journal.record_result(task, first)
            journal.record_attempt(task, 2)  # a later resume re-observed it
            journal.record_result(task, second)
        original = path.read_bytes()
        before, after = compact_journal(path)
        assert (before, after) == (4, 1)
        records = read_records(path)
        assert [r["type"] for r in records] == ["header", "result"]
        # The original is preserved untouched as .old.
        assert path.with_name(path.name + ".old").read_bytes() == original
        # The compacted journal still resumes the row.
        with Journal(path, resume=True) as journal:
            assert list(journal.resumable([task])) == [0]

    def test_failure_superseded_by_result(self, tmp_path):
        from repro.parallel import compact_journal
        from repro.parallel.executor import TaskFailure

        path = tmp_path / "sweep.jsonl"
        done, lost = ROWS[0], ROWS[1]
        with Journal(path) as journal:
            journal.record_failure(
                done,
                TaskFailure(key=done.key, status="crashed", attempts=3, error="boom"),
            )
            journal.record_result(done, execute_task(done))
            # A key with no result at all keeps its failure record.
            journal.record_failure(
                lost,
                TaskFailure(key=lost.key, status="timeout", attempts=2, error="slow"),
            )
        before, after = compact_journal(path)
        assert (before, after) == (3, 2)
        kinds = {r["key"]: r["type"] for r in read_records(path)[1:]}
        assert kinds == {done.key: "result", lost.key: "failure"}

    def test_refuses_non_journal(self, tmp_path):
        from repro.parallel import compact_journal

        path = tmp_path / "sweep.jsonl"
        path.write_text("nope\n")
        with pytest.raises(JournalError):
            compact_journal(path)

    def test_cli_journal_compact(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "sweep.jsonl"
        task = ROWS[0]
        with Journal(path) as journal:
            journal.record_attempt(task, 1)
            journal.record_result(task, execute_task(task))
        assert main(["journal", "compact", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 -> 1 record(s)" in out
        assert path.with_name(path.name + ".old").exists()
        assert main(["journal", "compact", str(tmp_path / "missing.jsonl")]) == 1


class TestBatchedFsync:
    def test_env_knob_defaults_safe(self, tmp_path, monkeypatch):
        path = tmp_path / "sweep.jsonl"
        monkeypatch.delenv("REPRO_JOURNAL_FSYNC", raising=False)
        with Journal(path) as journal:
            assert journal.fsync_every is True
        monkeypatch.setenv("REPRO_JOURNAL_FSYNC", "0")
        with Journal(path) as journal:
            assert journal.fsync_every is False
        # An explicit argument wins over the environment.
        with Journal(path, fsync=True) as journal:
            assert journal.fsync_every is True

    def test_batched_appends_flushed_and_synced(self, tmp_path):
        from repro.parallel.journal import FSYNC_BATCH

        path = tmp_path / "sweep.jsonl"
        with Journal(path, fsync=False) as journal:
            for attempt in range(FSYNC_BATCH + 3):
                journal.record_attempt(ROWS[0], attempt)
            # Crossing the batch boundary resets the unsynced counter
            # (the header append counts as the first unsynced record).
            assert journal._unsynced == 4
            journal.sync()
            assert journal._unsynced == 0
            # Records are flushed (visible) even before close.
            assert len(read_records(path)) == FSYNC_BATCH + 4
        assert len(read_records(path)) == FSYNC_BATCH + 4

    def test_torn_tail_recovery_with_batching(self, tmp_path):
        # The crash-recovery contract is identical with batching on: a
        # torn tail is truncated to the last whole record, not trusted.
        path = tmp_path / "sweep.jsonl"
        task = ROWS[0]
        with Journal(path, fsync=False) as journal:
            journal.record_result(task, execute_task(task))
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"type":"result","key":"tor')
        with pytest.warns(UserWarning, match="torn tail"):
            with Journal(path, resume=True, fsync=False) as journal:
                assert journal.tail_truncated
                assert list(journal.resumable([task])) == [0]
        assert path.read_bytes() == intact
