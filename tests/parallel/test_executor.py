"""Tests for the process-pool executor: parity, scheduling, plumbing.

The mini-sweep here uses the tiny ``3-5 RNS`` benchmark so the
process-pool tests stay fast; the full-size parity sweep lives in
``benchmarks/bench_parallel.py``.
"""

import pytest

from repro.errors import ReproError
from repro.parallel import (
    CostModel,
    execute_task,
    row_fingerprint,
    run_tasks,
    table4_task,
    table5_task,
    verify_shipped,
)

MINI = [
    table4_task("3-5 RNS", verify=True, ship_cfs=True),
    table5_task("3-5 RNS", verify=True),
]


@pytest.fixture(scope="module")
def sequential():
    return run_tasks(MINI, jobs=1, cost_model=CostModel())


@pytest.fixture(scope="module")
def parallel():
    return run_tasks(MINI, jobs=2, cost_model=CostModel())


class TestParity:
    def test_rows_bit_identical(self, sequential, parallel):
        assert len(sequential.results) == len(parallel.results)
        for seq, par in zip(sequential.results, parallel.results):
            assert seq.key == par.key
            assert row_fingerprint(seq.result) == row_fingerprint(par.result)

    def test_results_in_submission_order(self, parallel):
        assert [r.key for r in parallel.results] == [t.key for t in MINI]

    def test_shipped_cfs_verify(self, parallel):
        checked = verify_shipped(parallel.results[0])
        assert checked == 6  # 2 partitions x (ISF, Alg3.1, Alg3.3)
        assert verify_shipped(parallel.results[1]) == 0  # table5 ships none

    def test_verify_shipped_detects_tampering(self, parallel):
        result = parallel.results[0]
        row = result.result
        original = row.parts[0].measures["ISF"]
        try:
            row.parts[0].measures["ISF"] = type(original)(
                max_width=original.max_width + 1, nodes=original.nodes
            )
            with pytest.raises(ReproError, match="parity mismatch"):
                verify_shipped(result)
        finally:
            row.parts[0].measures["ISF"] = original


class TestReports:
    def test_sequential_report_shape(self, sequential):
        assert sequential.jobs == 1
        assert sequential.wall_s > 0
        assert len(sequential.workers) == 1
        (usage,) = sequential.workers.values()
        assert usage.tasks == len(MINI)
        assert sequential.schedule == [t.key for t in MINI]

    def test_parallel_report_shape(self, parallel):
        assert parallel.jobs == 2
        assert parallel.scheduling_overhead_s >= 0.0
        assert sum(u.tasks for u in parallel.workers.values()) == len(MINI)
        for usage in parallel.workers.values():
            assert usage.busy_s > 0
            assert 0.0 <= usage.utilization
        # Parent pid never appears: the work happened in workers.
        import os

        assert str(os.getpid()) not in parallel.workers

    def test_schedule_is_longest_first(self):
        model = CostModel({"table4:3-5 RNS": 0.1, "table5:3-5 RNS": 9.0})
        report = run_tasks(MINI, jobs=1, cost_model=model)
        # jobs=1 executes (and reports) submission order...
        assert report.schedule == [t.key for t in MINI]
        # ...while the model itself puts the expensive row first.
        assert model.schedule(MINI) == [1, 0]

    def test_to_record_is_json_ready(self, parallel):
        import json

        record = parallel.to_record()
        text = json.dumps(record)
        assert "row_wall_s" in text
        assert record["jobs"] == 2

    def test_cost_model_learns_from_run(self):
        model = CostModel()
        run_tasks(MINI, jobs=1, cost_model=model)
        # Estimates are now observed walls, not kind defaults.
        assert model.estimates["table4:3-5 RNS"] > 0
        assert model.estimates["table5:3-5 RNS"] > 0


class TestExecuteTask:
    def test_unknown_kind_raises(self):
        from repro.parallel.tasks import RowTask

        with pytest.raises(ReproError, match="unknown row task kind"):
            execute_task(RowTask("table99", "x"))

    def test_delta_counters_nonzero(self):
        result = execute_task(table4_task("3-5 RNS"))
        assert result.stats_delta["op_calls"] > 0
        assert result.stats_delta["kernel_steps"] > 0
        assert result.wall_s > 0
