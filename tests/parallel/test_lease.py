"""Lease-ledger pathology tests: skewed clocks, zombies, torn segments.

The properties under test are the fabric's safety arguments
(DESIGN.md §13):

* lease acquisition is exclusive (atomic ``O_EXCL`` create);
* liveness is judged from heartbeat *counter movement* against the
  coordinator's own monotonic clock — a worker with an arbitrarily
  wrong wall clock is indistinguishable from a healthy one, and a
  heartbeat written *after* the TTL elapsed cannot resurrect a lease;
* fencing epochs are monotone, durable, and bumped before the lease is
  removed, so a paused-then-resumed worker's stale result is always
  distinguishable;
* result segments share the journal's checksummed-line discipline —
  a partial tail is an in-flight append (re-read later), never data.
"""

from __future__ import annotations

import json

import pytest

from repro.parallel.lease import LeaseLedger, default_worker_id


class FakeClock:
    """Injectable monotonic clock: advances only when told to."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


@pytest.fixture
def ledger(tmp_path):
    led = LeaseLedger(tmp_path, lease_ttl=10.0, clock=FakeClock())
    led.ensure_dirs()
    return led


class TestAcquire:
    def test_exclusive(self, ledger):
        assert ledger.acquire("c1", "t:row", "w1") is not None
        assert ledger.acquire("c1", "t:row", "w2") is None

    def test_lease_records_fence_epoch(self, ledger):
        ledger.fence("c1")
        ledger.fence("c1")
        lease = ledger.acquire("c1", "t:row", "w1")
        assert lease.epoch == 2
        assert ledger.lease_of("c1").worker == "w1"

    def test_reacquirable_after_fence(self, ledger):
        ledger.acquire("c1", "t:row", "w1")
        ledger.fence("c1")
        lease = ledger.acquire("c1", "t:row", "w2")
        assert lease is not None and lease.epoch == 1

    def test_default_worker_id_is_filesystem_safe(self):
        worker = default_worker_id()
        assert worker
        assert "/" not in worker and " " not in worker


class TestFencing:
    def test_epoch_monotone_and_durable(self, ledger, tmp_path):
        assert ledger.fence_epoch("c1") == 0
        assert ledger.fence("c1") == 1
        assert ledger.fence("c1") == 2
        # A fresh ledger over the same directory (a restarted
        # coordinator) sees the same epoch — fencing survives restarts.
        reopened = LeaseLedger(tmp_path)
        assert reopened.fence_epoch("c1") == 2

    def test_fence_removes_the_lease(self, ledger):
        ledger.acquire("c1", "t:row", "w1")
        ledger.fence("c1")
        assert ledger.lease_of("c1") is None


class TestLiveness:
    """Clock-skew immunity: only beat movement on the coordinator's
    clock matters; worker wall timestamps are display-only."""

    def _heartbeat_with_wall_time(self, ledger, worker, wall_unix):
        """A heartbeat whose wall clock is arbitrarily wrong."""
        ledger.heartbeat(worker)
        path = ledger.workers_dir / f"{worker}.json"
        doc = json.loads(path.read_text())
        doc["time_unix"] = wall_unix
        path.write_text(json.dumps(doc))

    def test_clock_skewed_worker_stays_alive(self, ledger):
        clock = ledger._clock
        lease = ledger.acquire("c1", "t:row", "skewed")
        # The worker's wall clock is days in the past — and drifts
        # further every beat — but its counter keeps moving.
        for i in range(5):
            self._heartbeat_with_wall_time(ledger, "skewed", 1000.0 - i * 9000)
            ledger.observe_liveness()
            clock.advance(8.0)  # under the 10s TTL between moves
            assert not ledger.lease_expired(lease)

    def test_future_clock_cannot_immortalise(self, ledger):
        clock = ledger._clock
        lease = ledger.acquire("c1", "t:row", "future")
        # One beat stamped far in the wall-clock future, then silence:
        # the lease must still expire one TTL later.
        self._heartbeat_with_wall_time(ledger, "future", 1e12)
        ledger.observe_liveness()
        assert not ledger.lease_expired(lease)  # coordinator's first look
        clock.advance(10.1)
        ledger.observe_liveness()
        assert ledger.lease_expired(lease)

    def test_heartbeat_after_expiry_is_too_late(self, ledger):
        clock = ledger._clock
        lease = ledger.acquire("c1", "t:row", "paused")
        ledger.heartbeat("paused")
        ledger.observe_liveness()
        assert not ledger.lease_expired(lease)  # coordinator's first look
        clock.advance(10.1)
        ledger.observe_liveness()
        assert ledger.lease_expired(lease)
        epoch = ledger.fence("c1")
        # The worker wakes up and heartbeats again — the row is already
        # fenced, so its in-flight result (old epoch) is stale and the
        # row is re-leasable under the new epoch.
        ledger.heartbeat("paused")
        ledger.observe_liveness()
        assert ledger.fence_epoch("c1") == epoch == 1
        assert lease.epoch < epoch
        assert ledger.acquire("c1", "t:row", "other").epoch == 1

    def test_fresh_lease_never_reaped_before_one_ttl(self, ledger):
        # A worker that dies before its first heartbeat: the reference
        # is the moment the coordinator first saw the lease.
        lease = ledger.acquire("c1", "t:row", "stillborn")
        assert not ledger.lease_expired(lease)  # first observation
        ledger._clock.advance(9.9)
        assert not ledger.lease_expired(lease)
        ledger._clock.advance(0.2)
        assert ledger.lease_expired(lease)

    def test_silent_worker_expires(self, ledger):
        lease = ledger.acquire("c1", "t:row", "w1")
        ledger.heartbeat("w1")
        ledger.observe_liveness()
        assert not ledger.lease_expired(lease)  # coordinator's first look
        ledger._clock.advance(5.0)
        assert not ledger.lease_expired(lease)
        ledger._clock.advance(5.2)
        assert ledger.lease_expired(lease)


class TestSegments:
    def test_roundtrip_and_incremental_tail(self, ledger):
        ledger.append_result("w1", "c1", "t:a", 0, "UGF5bG9hZA==", status="ok")
        records = ledger.read_new_records()
        assert len(records) == 1 and records[0]["config"] == "c1"
        assert ledger.read_new_records() == []  # consumed
        ledger.append_failure(
            "w1", "c2", "t:b", 1, status="failed", error="boom"
        )
        (record,) = ledger.read_new_records()
        assert record["type"] == "failure" and record["epoch"] == 1

    def test_partial_tail_left_for_next_read(self, ledger):
        ledger.append_result("w1", "c1", "t:a", 0, "cGF5", status="ok")
        path = ledger.results_dir / "w1.jsonl"
        intact = path.read_bytes()
        with open(path, "ab") as fh:
            fh.write(b'{"type":"result","config":"c2"')  # no newline
        assert len(ledger.read_new_records()) == 1
        # The writer finishes the line (with a valid crc): now it reads.
        path.write_bytes(intact)
        ledger.append_result("w1", "c2", "t:b", 0, "cGF5", status="ok")
        (record,) = ledger.read_new_records()
        assert record["config"] == "c2"

    def test_checksum_failing_line_blocks_without_crashing(self, ledger):
        path = ledger.results_dir / "w1.jsonl"
        path.write_bytes(b'{"type":"result","config":"c1","crc":"nope"}\n')
        assert ledger.read_new_records() == []

    def test_records_attributed_per_worker_file(self, ledger):
        ledger.append_result("w1", "c1", "t:a", 0, "cGF5", status="ok")
        ledger.append_result("w2", "c2", "t:b", 0, "cGF5", status="ok")
        records = ledger.read_new_records()
        assert {r["worker"] for r in records} == {"w1", "w2"}


class TestDoneAndReset:
    def test_done_markers(self, ledger):
        assert ledger.done_status("c1") is None
        ledger.mark_done("c1", "ok")
        assert ledger.done_status("c1") == "ok"
        assert ledger.done_map() == {"c1": "ok"}
        ledger.clear_done()
        assert ledger.done_map() == {}

    def test_reset_wipes_everything(self, ledger):
        ledger.acquire("c1", "t:a", "w1")
        ledger.fence("c2")
        ledger.heartbeat("w1")
        ledger.mark_done("c3", "ok")
        ledger.append_result("w1", "c1", "t:a", 0, "cGF5", status="ok")
        ledger.reset()
        assert ledger.leases() == []
        assert ledger.fence_epoch("c2") == 0
        assert ledger.worker_records() == {}
        assert ledger.done_map() == {}
        assert ledger.read_new_records() == []
