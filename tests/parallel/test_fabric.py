"""Fabric coordinator/worker tests: equivalence under machine loss.

The acceptance gate of the distributed sweep fabric: N elastic workers
with arbitrary kills — a worker dying mid-row, a paused worker
committing after it was fenced, the coordinator SIGKILL'd and resumed —
produce ``len(results) + len(failures) == len(tasks)``, totals and row
fingerprints equal to an uninterrupted ``jobs=1`` run, and zero
double-counted rows.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bdd import stats
from repro.errors import ReproError
from repro.parallel import (
    fabric_status,
    run_fabric,
    run_tasks,
    table4_task,
    table5_task,
)
from repro.parallel.fabric import (
    load_tasks_file,
    run_worker,
    seed_tasks,
    task_from_doc,
)
from repro.parallel.journal import (
    config_hash,
    encode_result_payload,
    scan_journal,
)
from repro.parallel.lease import LeaseLedger
from repro.parallel.tasks import execute_task, row_fingerprint

TASKS = [table4_task("3-5 RNS"), table5_task("3-5 RNS")]

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def executed():
    """One in-process execution per row, for crafting ledger records."""
    return {t.key: execute_task(t) for t in TASKS}


class TestTaskSeeding:
    def test_round_trip_preserves_config_hash(self, tmp_path):
        path = tmp_path / "tasks.jsonl"
        seed_tasks(path, TASKS, [1, 0], lease_ttl=7.5)
        header, docs = load_tasks_file(path)
        assert header["lease_ttl"] == 7.5
        assert header["rows"] == len(TASKS)
        # Seeded in the given (LPT) order.
        assert [d["key"] for d in docs] == [TASKS[1].key, TASKS[0].key]
        for doc in docs:
            task = task_from_doc(doc)
            assert config_hash(task) == doc["config"]

    def test_corrupt_doc_refused(self):
        doc = {
            "kind": "table4",
            "name": "3-5 RNS",
            "options": [["verify", True]],
            "key": "table4:3-5 RNS",
            "config": "0000000000000000",
        }
        with pytest.raises(ReproError, match="round-trip"):
            task_from_doc(doc)

    def test_not_a_tasks_file(self, tmp_path):
        path = tmp_path / "tasks.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ReproError, match="repro-fabric-tasks"):
            load_tasks_file(path)


class TestFabricEquivalence:
    def test_local_fabric_matches_jobs1(self, tmp_path):
        report = run_fabric(TASKS, tmp_path / "fab", lease_ttl=5.0, poll_s=0.02)
        baseline = run_tasks(TASKS, jobs=1)
        assert len(report.results) + len(report.failures) == len(TASKS)
        assert not report.failures
        fabric_fps = {r.key: row_fingerprint(r.result) for r in report.results}
        base_fps = {r.key: row_fingerprint(r.result) for r in baseline.results}
        assert fabric_fps == base_fps
        for key in (*stats.ADDITIVE_KEYS, "rows_completed"):
            assert report.stats_totals[key] == baseline.stats_totals[key], key
        # Every row's lease is observed even when the row completes
        # within one poll interval (observed at acceptance).
        assert report.fabric["leases_granted"] == len(TASKS)
        assert report.fabric["results_stale"] == 0
        assert report.fabric["results_duplicate"] == 0
        # Results land in submission order, like the executor.
        assert [r.key for r in report.results] == [t.key for t in TASKS]

    def test_journal_carries_the_rows(self, tmp_path):
        root = tmp_path / "fab"
        run_fabric(TASKS, root, poll_s=0.02)
        records = scan_journal(root / "journal.jsonl")
        done = {r["key"] for r in records if r.get("type") == "result"}
        assert done == {t.key for t in TASKS}


class TestFencingRejection:
    """First-valid-result-wins: stale and duplicate commits never merge."""

    def test_stale_and_duplicate_results_rejected(self, tmp_path, executed):
        root = tmp_path / "fab"
        ledger = LeaseLedger(root)
        ledger.ensure_dirs()
        t0, t1 = TASKS
        c0, c1 = config_hash(t0), config_hash(t1)
        # Row 0's first holder was paused past its TTL and fenced; a
        # second execution committed under the new epoch — twice (a
        # retried segment append).  Segments are read in sorted name
        # order, so the zombie's old-epoch commit is seen first and must
        # be rejected as stale; the second epoch-1 commit is a
        # duplicate of the first.
        ledger.fence(c0)
        payload0 = encode_result_payload(executed[t0.key])
        ledger.append_result(
            "a-zombie", c0, t0.key, 0, payload0, status="ok"
        )
        ledger.append_result("b-good", c0, t0.key, 1, payload0, status="ok")
        ledger.append_result("b-good", c0, t0.key, 1, payload0, status="ok")
        ledger.append_result(
            "b-good", c1, t1.key, 0,
            encode_result_payload(executed[t1.key]), status="ok",
        )
        report = run_fabric(
            TASKS, root, resume=True, local_work=False, poll_s=0.02
        )
        assert len(report.results) == len(TASKS)
        assert not report.failures
        # Exactly one accepted result per row — zero double-counting.
        assert sorted(r.key for r in report.results) == sorted(
            t.key for t in TASKS
        )
        assert report.fabric["results_stale"] == 1
        assert report.fabric["results_duplicate"] == 1

    def test_undecodable_payload_charges_an_attempt(self, tmp_path, executed):
        root = tmp_path / "fab"
        ledger = LeaseLedger(root)
        ledger.ensure_dirs()
        t0, t1 = TASKS
        c0, c1 = config_hash(t0), config_hash(t1)
        ledger.append_result("w", c0, t0.key, 0, "bm90LWEtcGlja2xl", status="ok")
        ledger.append_result(
            "w", c1, t1.key, 0,
            encode_result_payload(executed[t1.key]), status="ok",
        )
        report = run_fabric(
            TASKS, root, resume=True, local_work=False, retries=0,
            poll_s=0.02,
        )
        assert len(report.results) + len(report.failures) == len(TASKS)
        (failure,) = report.failures
        assert failure.key == t0.key
        assert "undecodable" in failure.error


class TestWorkerLoss:
    def test_expired_lease_is_retried_by_another_worker(self, tmp_path):
        root = tmp_path / "fab"
        ledger = LeaseLedger(root, lease_ttl=1.0)
        ledger.ensure_dirs()
        # A worker leased row 0 and its machine vanished — no result,
        # no heartbeats, lease file left behind.
        ledger.acquire(config_hash(TASKS[0]), TASKS[0].key, "ghost")
        report = run_fabric(
            TASKS, root, lease_ttl=1.0, resume=True, local_work=True,
            retries=2, poll_s=0.02, ledger=ledger,
        )
        assert len(report.results) == len(TASKS)
        assert not report.failures
        assert report.fabric["leases_expired"] >= 1
        assert report.fabric["leases_fenced"] >= 1
        assert report.retries >= 1  # the lost worker's charged attempt

    def test_worker_lost_quarantine_after_retries(self, tmp_path, executed):
        root = tmp_path / "fab"
        ledger = LeaseLedger(root, lease_ttl=0.3)
        ledger.ensure_dirs()
        t0, t1 = TASKS
        ledger.acquire(config_hash(t0), t0.key, "ghost")
        ledger.append_result(
            "w", config_hash(t1), t1.key, 0,
            encode_result_payload(executed[t1.key]), status="ok",
        )
        report = run_fabric(
            TASKS, root, lease_ttl=0.3, resume=True, local_work=False,
            retries=0, poll_s=0.02, ledger=ledger,
        )
        assert len(report.results) + len(report.failures) == len(TASKS)
        (failure,) = report.failures
        assert failure.status == "worker-lost"
        assert failure.key == t0.key
        assert "expired" in failure.error
        assert report.fabric["leases_expired"] == 1
        # The quarantine is durable: it is journaled and visible to
        # --status without running anything.
        status = fabric_status(root)
        assert status["rows_failed"] == 1
        assert status["failed"][t0.key] == "worker-lost"


class TestRunWorker:
    def test_worker_completes_all_rows_and_exits(self, tmp_path):
        root = tmp_path / "fab"
        ledger = LeaseLedger(root)
        ledger.ensure_dirs()
        seed_tasks(root / "tasks.jsonl", TASKS, range(len(TASKS)), lease_ttl=5.0)
        # Mark everything done except row 0: the worker must execute
        # exactly the one pending row, then exit on its own.
        for task in TASKS[1:]:
            ledger.mark_done(config_hash(task), "ok")
        summary = run_worker(root, worker_id="w1", poll_s=0.02, max_idle_s=5.0)
        assert summary["leased"] == 1
        assert summary["completed"] == 1
        assert summary["failed"] == 0
        (record,) = ledger.read_new_records()
        assert record["worker"] == "w1"
        assert record["config"] == config_hash(TASKS[0])

    def test_worker_times_out_without_a_task_file(self, tmp_path):
        with pytest.raises(ReproError, match="no fabric task file"):
            run_worker(tmp_path, worker_id="w1", poll_s=0.02, max_idle_s=0.2)


class TestStatus:
    def test_journal_only_status(self, tmp_path):
        root = tmp_path / "fab"
        run_fabric(TASKS, root, poll_s=0.02)
        status = fabric_status(root / "journal.jsonl")
        assert status["rows_done"] == len(TASKS)
        assert "rows_leased" not in status  # bare journal: no ledger info

    def test_directory_status(self, tmp_path):
        root = tmp_path / "fab"
        run_fabric(TASKS, root, poll_s=0.02)
        status = fabric_status(root)
        assert status["rows_done"] == len(TASKS)
        assert status["rows_pending"] == 0
        assert status["rows_leased"] == 0
        assert status["workers"]  # the local worker heartbeated
        for info in status["workers"].values():
            assert info["heartbeat_age_s"] >= 0.0


class TestCoordinatorKillResume:
    def test_sigkilled_coordinator_resumes_to_jobs1_totals(self, tmp_path):
        """The CI fabric-smoke coordinator leg, as a test: abort the
        coordinator right after it accepts the first row, resume, and
        demand jobs=1-identical totals with no row lost or recomputed
        into the totals twice."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_FAULT_STATE"] = str(tmp_path / "state")
        (tmp_path / "state").mkdir()
        fab = tmp_path / "fab"
        args = [
            sys.executable, "-m", "repro", "sweep", "3-5 RNS",
            "--tables", "4,5", "--fabric", str(fab), "--lease-ttl", "5",
        ]
        killed = subprocess.run(
            args,
            env={**env, "REPRO_FAULT_INJECT": "abort=fabric-merge:table4:3-5 RNS@1"},
            capture_output=True, text=True, timeout=600, cwd=tmp_path,
        )
        assert killed.returncode == 32, killed.stderr
        resumed = subprocess.run(
            [*args, "--resume", "--bench-json", str(tmp_path / "resumed.json")],
            env=env, capture_output=True, text=True, timeout=600, cwd=tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        clean = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "3-5 RNS",
             "--tables", "4,5",
             "--bench-json", str(tmp_path / "clean.json")],
            env=env, capture_output=True, text=True, timeout=600, cwd=tmp_path,
        )
        assert clean.returncode == 0, clean.stderr
        r = json.loads((tmp_path / "resumed.json").read_text())["sweeps"]["fabric"]
        c = json.loads((tmp_path / "clean.json").read_text())["sweeps"]["jobs=1"]
        assert r["rows_resumed"] >= 1
        assert not r["failures"] and not c["failures"]
        assert len(r["row_status"]) == len(c["row_status"]) == 2
        for key in ("op_calls", "kernel_steps", "rows_completed"):
            assert r["stats_totals"][key] == c["stats_totals"][key], key
