"""Pin the fault-parent marker fix: no ``os.environ`` mutation.

``run_tasks`` used to export ``REPRO_FAULT_PARENT=<pid>`` so injected
faults could tell the sweep parent from a worker.  A process-global
marker breaks concurrent sweeps in one process (the query service runs
several): whichever sweep wrote last won, and the variable leaked to
the caller.  The marker now travels in the task description
(``RowTask.fault_parent``, stamped via ``dataclasses.replace``).
"""

import concurrent.futures
import os
from dataclasses import replace

import pytest

from repro.errors import FaultInjected
from repro.parallel import CostModel, run_tasks, table4_task
from repro.parallel.tasks import _maybe_inject

ROWS = [table4_task("3-5 RNS"), table4_task("3-7 RNS")]


@pytest.fixture(autouse=True)
def no_parent_marker(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PARENT", raising=False)
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)


class TestNoEnvironMutation:
    def test_run_tasks_leaves_environ_alone(self):
        before = dict(os.environ)
        report = run_tasks(ROWS, jobs=1, cost_model=CostModel())
        assert len(report.results) == len(ROWS)
        assert "REPRO_FAULT_PARENT" not in os.environ
        assert dict(os.environ) == before

    def test_caller_tasks_not_mutated(self):
        tasks = [table4_task("3-5 RNS")]
        assert tasks[0].fault_parent is None
        run_tasks(tasks, jobs=1, cost_model=CostModel())
        # The stamp is applied to copies (dataclasses.replace), never to
        # the caller's objects.
        assert tasks[0].fault_parent is None

    def test_concurrent_sweeps_do_not_interfere(self):
        """Two sweeps in one process: with the env-var marker the
        second export clobbered the first; the per-task stamp cannot."""
        before = dict(os.environ)
        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            futs = [
                pool.submit(
                    run_tasks,
                    [table4_task("3-5 RNS")],
                    jobs=1,
                    cost_model=CostModel(),
                )
                for _ in range(2)
            ]
            reports = [f.result(timeout=600) for f in futs]
        for report in reports:
            assert len(report.results) == 1
            assert not report.failures
        assert "REPRO_FAULT_PARENT" not in os.environ
        assert dict(os.environ) == before


class TestParentDetectionViaTask:
    def test_stamped_task_detects_parent(self, monkeypatch):
        """A fault whose task carries this pid fires the in-parent
        degraded mode (crash/hang degrade to a raise) — proving the
        marker is read from the task, not the environment."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash=table4:3-5 RNS")
        task = replace(table4_task("3-5 RNS"), fault_parent=os.getpid())
        with pytest.raises(FaultInjected, match="in parent"):
            _maybe_inject(task)

    def test_wrong_pid_stamp_is_not_parent(self, monkeypatch):
        """A stamp for a *different* pid must not select the in-parent
        branch — a hang fault sleeps in a worker, but with a tiny
        configured hang it returns instead of raising."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang=table4:3-5 RNS")
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "0.01")
        task = replace(table4_task("3-5 RNS"), fault_parent=os.getpid() + 1)
        assert _maybe_inject(task) is None  # slept, did not raise

    def test_fault_parent_excluded_from_config_hash(self):
        """Journal row identity must not depend on the parent pid, or
        resuming a sweep from a new process would re-run everything."""
        from repro.parallel.journal import config_hash

        bare = table4_task("3-5 RNS")
        stamped = replace(bare, fault_parent=12345)
        assert config_hash(bare) == config_hash(stamped)

    def test_fault_parent_not_in_options(self):
        task = replace(table4_task("3-5 RNS"), fault_parent=999)
        assert task.key == "table4:3-5 RNS"
        assert all(k != "fault_parent" for k, _v in task.options)
