"""Tests for the cost model and longest-first scheduling."""

import json

import pytest

from repro.parallel import CostModel, table4_task, table5_task, table6_task
from repro.parallel.costs import KIND_DEFAULTS


class TestEstimates:
    def test_kind_defaults(self):
        model = CostModel()
        assert model.estimate("table4:foo") == KIND_DEFAULTS["table4"]
        assert model.estimate("table6:99") == KIND_DEFAULTS["table6"]
        assert model.estimate("weird:thing") == 1.0

    def test_known_estimate_wins(self):
        model = CostModel({"table4:foo": 12.5})
        assert model.estimate("table4:foo") == 12.5

    def test_observe_first_sample_taken_verbatim(self):
        model = CostModel()
        model.observe("table4:foo", 3.0)
        assert model.estimate("table4:foo") == 3.0

    def test_observe_ewma(self):
        model = CostModel({"table4:foo": 2.0}, alpha=0.5)
        model.observe("table4:foo", 4.0)
        assert model.estimate("table4:foo") == 3.0


class TestSeedingAndPersistence:
    def test_seed_from_bench_json(self, tmp_path):
        bench = tmp_path / "BENCH_X.json"
        bench.write_text(
            json.dumps(
                {
                    "records": {
                        "table4:foo": {"wall_s": 7.5},
                        "table5:bar": {"wall_s": 0.5, "ops_per_sec": 10},
                        "no_wall": {"op_calls": 3},
                    }
                }
            )
        )
        model = CostModel.load(seed_bench=[bench])
        assert model.estimate("table4:foo") == 7.5
        assert model.estimate("table5:bar") == 0.5
        assert model.estimate("no_wall") == 1.0  # unmatched -> kind default

    def test_persisted_observations_override_seeds(self, tmp_path):
        bench = tmp_path / "BENCH_X.json"
        bench.write_text(json.dumps({"records": {"table4:foo": {"wall_s": 7.5}}}))
        path = tmp_path / "costs.json"
        first = CostModel.load(path, seed_bench=[bench])
        first.observe("table4:foo", 1.5)  # EWMA over the 7.5 seed -> 4.5
        first.save()
        again = CostModel.load(path, seed_bench=[bench])
        # The persisted observation, not the bench seed, wins on reload.
        assert again.estimate("table4:foo") == first.estimate("table4:foo") == 4.5

    def test_missing_and_malformed_files_ignored(self, tmp_path):
        bad = tmp_path / "BENCH_BAD.json"
        bad.write_text("{not json")
        model = CostModel.load(
            tmp_path / "absent.json", seed_bench=[bad, tmp_path / "missing.json"]
        )
        assert model.estimates == {}

    def test_save_without_path_is_noop(self):
        assert CostModel().save() is None


class TestRobustPersistence:
    def test_corrupt_cost_file_backed_up_with_warning(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text("{torn half-write")
        with pytest.warns(UserWarning, match="corrupt"):
            model = CostModel.load(path)
        assert model.estimates == {}
        assert not path.exists()
        assert (tmp_path / "costs.json.bad").read_text() == "{torn half-write"

    def test_wrong_format_file_backed_up_with_warning(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text(json.dumps({"format": "something-else", "estimates": {}}))
        with pytest.warns(UserWarning, match="corrupt or not a"):
            CostModel.load(path)
        assert (tmp_path / "costs.json.bad").exists()

    def test_missing_cost_file_stays_silent(self, tmp_path, recwarn):
        model = CostModel.load(tmp_path / "absent.json")
        assert model.estimates == {}
        assert not recwarn.list

    def test_save_is_atomic_no_temp_leftovers(self, tmp_path):
        path = tmp_path / "costs.json"
        model = CostModel({"table4:foo": 1.25}, path=path)
        assert model.save() == path
        data = json.loads(path.read_text())
        assert data["format"] == "repro-cost-model"
        assert data["estimates"] == {"table4:foo": 1.25}
        # Only the final file (plus the advisory lock file that guards
        # concurrent merge-saves) remains: the temp staging file was
        # renamed, never left behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "costs.json",
            "costs.json.lock",
        ]

    def test_save_then_load_roundtrip_after_overwrite(self, tmp_path):
        path = tmp_path / "costs.json"
        CostModel({"table5:a": 2.0}, path=path).save()
        # An *observed* value overwrites in place (a merely-seeded one
        # would lose to the on-disk value under merge-on-save).
        second = CostModel(path=path)
        second.observe("table5:a", 3.0)
        second.save()
        assert CostModel.load(path).estimates == {"table5:a": 3.0}

    def test_merge_save_preserves_concurrent_writers_keys(self, tmp_path):
        """The shared-cost-file contract: a daemon and a sweep saving
        to one file exchange observations instead of clobbering.  Keys
        a model *observed* win over disk; everything else merges in."""
        path = tmp_path / "costs.json"
        sweep = CostModel(path=path)
        sweep.observe("table4:row", 2.0)
        sweep.save()
        daemon = CostModel.load(path)
        daemon.observe("query:width_reduce/abc", 0.25)
        # Meanwhile the sweep re-saved with a fresher observation.
        sweep.observe("table4:row", 4.0)
        sweep.save()
        daemon.save()
        merged = CostModel.load(path).estimates
        # The daemon never observed table4:row, so the sweep's latest
        # value survived the daemon's later save; the daemon's own
        # observation is there too.
        assert merged["table4:row"] == 3.0  # EWMA of 2.0 then 4.0
        assert merged["query:width_reduce/abc"] == 0.25
        # The merged view also folded back into the daemon model.
        assert daemon.estimates["table4:row"] == 3.0

    def test_save_without_merge_overwrites(self, tmp_path):
        path = tmp_path / "costs.json"
        CostModel({"table5:a": 2.0}, path=path).save()
        other = CostModel({"table5:b": 1.0}, path=path)
        other.save(merge=False)
        assert CostModel.load(path).estimates == {"table5:b": 1.0}


class TestScheduling:
    def test_longest_first(self):
        tasks = [table4_task("a"), table6_task(10), table5_task("b")]
        model = CostModel()  # defaults: table6 > table5 > table4
        assert model.schedule(tasks) == [1, 2, 0]

    def test_stable_on_ties(self):
        tasks = [table4_task("a"), table4_task("b"), table4_task("c")]
        assert CostModel().schedule(tasks) == [0, 1, 2]

    def test_estimates_reorder(self):
        tasks = [table4_task("slow"), table4_task("fast")]
        model = CostModel({"table4:slow": 10.0, "table4:fast": 0.1})
        assert model.schedule(tasks) == [0, 1]
        model = CostModel({"table4:slow": 0.1, "table4:fast": 10.0})
        assert model.schedule(tasks) == [1, 0]
