"""docs/api.md must stay in sync with the public API."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "scripts"))

import gen_api_docs  # noqa: E402


def test_api_docs_up_to_date():
    current = (
        pathlib.Path(__file__).parent.parent / "docs" / "api.md"
    ).read_text()
    assert current == gen_api_docs.render(), (
        "docs/api.md is stale; run python scripts/gen_api_docs.py"
    )


def test_every_symbol_has_summary():
    text = gen_api_docs.render()
    for line in text.splitlines():
        if line.startswith("- **"):
            summary = line.split("—", 1)[1].strip()
            assert summary != ".", line
