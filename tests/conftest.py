"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.bdd import BDD
from repro.isf.ternary import MultiOutputSpec


@pytest.fixture
def bdd4() -> tuple[BDD, list[int]]:
    """A manager with four input variables x1..x4."""
    bdd = BDD()
    vids = bdd.add_vars(["x1", "x2", "x3", "x4"])
    return bdd, vids


def random_spec(
    rng: random.Random,
    *,
    n_inputs: int,
    n_outputs: int,
    dc_prob: float = 0.4,
) -> MultiOutputSpec:
    """A random small ternary spec (dense with per-value don't cares)."""
    care = {}
    for m in range(1 << n_inputs):
        values = tuple(
            None if rng.random() < dc_prob else rng.randint(0, 1)
            for _ in range(n_outputs)
        )
        if any(v is not None for v in values):
            care[m] = values
    return MultiOutputSpec(n_inputs, n_outputs, care, name="rand")


@st.composite
def spec_strategy(draw, max_inputs: int = 4, max_outputs: int = 3):
    """Hypothesis strategy producing small MultiOutputSpec instances."""
    n_inputs = draw(st.integers(1, max_inputs))
    n_outputs = draw(st.integers(1, max_outputs))
    cell = st.one_of(st.none(), st.integers(0, 1))
    table = draw(
        st.lists(
            st.tuples(*([cell] * n_outputs)),
            min_size=1 << n_inputs,
            max_size=1 << n_inputs,
        )
    )
    care = {
        m: values
        for m, values in enumerate(table)
        if any(v is not None for v in values)
    }
    return MultiOutputSpec(n_inputs, n_outputs, care, name="hyp")


def brute_force_truth(bdd: BDD, f: int, vids: list[int]) -> list[int]:
    """Dense truth table of a BDD function over the given variables."""
    n = len(vids)
    out = []
    for m in range(1 << n):
        assignment = {v: (m >> (n - 1 - i)) & 1 for i, v in enumerate(vids)}
        out.append(bdd.evaluate(f, assignment))
    return out


def spec_allows(spec: MultiOutputSpec, minterm: int, outputs: tuple[int, ...]) -> bool:
    """Whether the spec permits the given fully specified output vector."""
    row = spec.care.get(minterm)
    if row is None:
        return True
    return all(want is None or got == want for got, want in zip(outputs, row))
