"""Tests for the configuration module and the exception hierarchy."""

import pytest

from repro import _config
from repro import errors


class TestConfig:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert not _config.full_scale()
        assert _config.word_list_sizes() == (400, 800, 1200)

    def test_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert _config.full_scale()
        assert _config.word_list_sizes() == (1730, 3366, 4705)

    def test_falsey_values(self, monkeypatch):
        for value in ("0", "false", ""):
            monkeypatch.setenv("REPRO_FULL_SCALE", value)
            assert not _config.full_scale()

    def test_limits_defaults(self):
        limits = _config.Limits()
        assert limits.max_compat_pairs > 0
        assert limits.sift_max_growth > 1.0


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.BDDError,
            errors.VariableError,
            errors.OrderingError,
            errors.ForeignNodeError,
            errors.SpecificationError,
            errors.IncompatibleError,
            errors.DecompositionError,
            errors.CascadeError,
            errors.BenchmarkError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_bdd_suberrors(self):
        assert issubclass(errors.VariableError, errors.BDDError)
        assert issubclass(errors.OrderingError, errors.BDDError)
        assert issubclass(errors.ForeignNodeError, errors.BDDError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.CascadeError("boom")
