"""Tests for Theorem 3.1 decomposition and segment walking."""

import pytest
from hypothesis import given, settings

from repro.cf import CharFunction, columns_at_height
from repro.decomp import decompose_at_height, walk_segment
from repro.errors import DecompositionError
from repro.isf import table1_spec
from repro.utils.bitops import bits_for

from tests.conftest import spec_strategy, spec_allows


class TestWalkSegment:
    def test_full_walk_table1(self):
        spec = table1_spec()
        cf = CharFunction.from_spec(spec)
        bdd = cf.bdd
        for m, values in spec.care.items():
            bits = [(m >> (3 - i)) & 1 for i in range(4)]
            assignment = dict(zip(cf.input_vids, bits))
            outputs, exit_node = walk_segment(bdd, cf.root, assignment, bdd.num_vars)
            assert exit_node == 1
            for vid, want in zip(cf.output_vids, values):
                if want is not None:
                    assert outputs[vid] == want
                else:
                    # don't care: the variable may be skipped
                    assert outputs.get(vid, 0) in (0, 1)

    def test_missing_assignment_raises(self):
        cf = CharFunction.from_spec(table1_spec())
        with pytest.raises(DecompositionError):
            walk_segment(cf.bdd, cf.root, {}, cf.bdd.num_vars)


class TestDecomposeAtHeight:
    def test_theorem31_rail_count(self):
        cf = CharFunction.from_spec(table1_spec())
        for height in range(1, cf.num_vars):
            d = decompose_at_height(cf, height)
            width = len(columns_at_height(cf.bdd, cf.root, height))
            assert d.rails == (bits_for(width) if width > 1 else 0)
            assert len(d.columns) == width

    def test_invalid_heights(self):
        cf = CharFunction.from_spec(table1_spec())
        with pytest.raises(DecompositionError):
            decompose_at_height(cf, 0)
        with pytest.raises(DecompositionError):
            decompose_at_height(cf, cf.num_vars)

    def test_block_variable_split(self):
        cf = CharFunction.from_spec(table1_spec())
        d = decompose_at_height(cf, 2)  # below (x1,x2,x3,y1)
        names = lambda vids: [cf.bdd.name_of(v) for v in vids]
        assert names(d.h_inputs) == ["x1", "x2", "x3"]
        assert names(d.h_outputs) == ["y1"]
        assert names(d.g_inputs) == ["x4"]
        assert names(d.g_outputs) == ["y2"]

    def test_composed_network_matches_table1(self):
        spec = table1_spec()
        cf = CharFunction.from_spec(spec)
        d = decompose_at_height(cf, 2)
        for m, values in spec.care.items():
            bits = [(m >> (3 - i)) & 1 for i in range(4)]
            out = d.evaluate(bits)
            for vid, want in zip(cf.output_vids, values):
                if want is not None:
                    assert out[vid] == want

    @settings(max_examples=20, deadline=None)
    @given(spec_strategy(max_inputs=4, max_outputs=2))
    def test_composed_network_is_valid_extension(self, spec):
        cf = CharFunction.from_spec(spec)
        t = cf.num_vars
        height = max(1, t // 2)
        d = decompose_at_height(cf, height)
        n = spec.n_inputs
        for m in range(1 << n):
            bits = [(m >> (n - 1 - i)) & 1 for i in range(n)]
            out = d.evaluate(bits)
            vector = tuple(out[v] for v in cf.output_vids)
            assert spec_allows(spec, m, vector), (m, vector)
