"""Tests for the MTBDD layer and the paper's motivating comparison."""

import pytest

from repro.cf import CharFunction, max_width
from repro.decomp import mtbdd_from_function, mtbdd_from_isf
from repro.errors import ReproError
from repro.isf import MultiOutputISF, table1_spec


class TestMTBDDBasics:
    def test_parity(self):
        m = mtbdd_from_function(4, lambda x: bin(x).count("1") & 1)
        for x in range(16):
            assert m.evaluate(x) == bin(x).count("1") & 1
        assert m.num_terminals() == 2

    def test_identity_function(self):
        m = mtbdd_from_function(3, lambda x: x)
        assert m.num_terminals() == 8
        for x in range(8):
            assert m.evaluate(x) == x

    def test_constant(self):
        m = mtbdd_from_function(2, lambda x: 7)
        assert m.num_nodes() == 0
        assert m.evaluate(3) == 7
        assert m.max_width() == 1

    def test_reduction_shares_nodes(self):
        # f(x) = x0: one internal node regardless of n.
        m = mtbdd_from_function(5, lambda x: (x >> 4) & 1)
        assert m.num_nodes() == 1

    def test_custom_order(self):
        m = mtbdd_from_function(3, lambda x: x & 1, order=[2, 0, 1])
        for x in range(8):
            assert m.evaluate(x) == x & 1
        assert m.num_nodes() == 1

    def test_order_validation(self):
        with pytest.raises(ReproError):
            mtbdd_from_function(2, lambda x: x, order=[0, 0])

    def test_size_guard(self):
        with pytest.raises(ReproError):
            mtbdd_from_function(30, lambda x: 0)


class TestWidths:
    def test_width_profile_identity(self):
        m = mtbdd_from_function(2, lambda x: x)
        # Full binary tree: 4 terminals, 2 nodes, 1 root (bottom-up).
        assert m.width_profile() == [4, 2, 1]

    def test_from_isf_matches_extension(self):
        spec = table1_spec()
        isf = MultiOutputISF.from_spec(spec)
        m = mtbdd_from_isf(isf, dc_value=0)
        ext = isf.extension(0)
        for x in range(16):
            want = 0
            for v in ext.value(x):
                want = (want << 1) | v
            assert m.evaluate(x) == want

    def test_paper_motivation_on_table1(self):
        """Intro claim: BDD_for_CF widths tend to be <= MTBDD widths."""
        spec = table1_spec()
        isf = MultiOutputISF.from_spec(spec)
        mtbdd = mtbdd_from_isf(isf, dc_value=0)
        cf = CharFunction.from_isf(isf.extension(0))
        assert max_width(cf.bdd, cf.root) <= mtbdd.max_width() + 1
