"""Cross-cutting properties tying charts, widths, and decompositions together."""

import random

from hypothesis import given, settings

from repro.bdd import set_order
from repro.cf import CharFunction, columns_at_height
from repro.decomp import DecompositionChart, decompose_at_height
from repro.isf import MultiOutputSpec
from repro.utils.bitops import bits_for

from tests.conftest import random_spec, spec_strategy


class TestWidthChartAgreement:
    def test_width_never_below_minimized_multiplicity(self):
        """Merged-chart µ is a lower bound on any same-cut CF width."""
        rng = random.Random(31)
        for _ in range(15):
            spec = random_spec(rng, n_inputs=4, n_outputs=1)
            chart = DecompositionChart(spec, [0, 1])
            mu_min, _ = chart.minimized_multiplicity()
            cf = CharFunction.from_spec(spec)
            order = [f"x{i}" for i in range(1, 5)] + ["y1"]
            set_order(cf.bdd, [cf.root], order)
            width = len(columns_at_height(cf.bdd, cf.root, 3))
            # The raw CF width equals the unmerged multiplicity, which
            # is >= the minimized one.
            assert width >= mu_min


class TestDecompositionNetworkSize:
    @settings(max_examples=15, deadline=None)
    @given(spec_strategy(max_inputs=4, max_outputs=2))
    def test_rails_bounded_by_bound_set_size(self, spec):
        """Decomposition is only useful when rails < |X1| — check the
        Theorem 3.1 accounting is at least consistent: rails is the
        exact ceil(log2) of the column count."""
        cf = CharFunction.from_spec(spec)
        t = cf.num_vars
        for height in range(1, t):
            d = decompose_at_height(cf, height)
            w = len(d.columns)
            assert d.rails == (bits_for(w) if w > 1 else 0)
            assert (1 << max(d.rails, 0)) >= w

    def test_cut_blocks_partition_variables(self):
        spec = MultiOutputSpec(3, 2, {0: (1, 0), 5: (0, 1)})
        cf = CharFunction.from_spec(spec)
        t = cf.num_vars
        for height in range(1, t):
            d = decompose_at_height(cf, height)
            all_vars = set(d.h_inputs) | set(d.h_outputs) | set(d.g_inputs) | set(d.g_outputs)
            assert all_vars == set(cf.input_vids) | set(cf.output_vids)
            assert not (set(d.h_inputs) & set(d.g_inputs))


class TestExtensionContainment:
    @settings(max_examples=15, deadline=None)
    @given(spec_strategy(max_inputs=3, max_outputs=2))
    def test_isf_cf_contains_both_extensions(self, spec):
        """χ_ISF admits every input/output pair each extension admits."""
        from repro.isf import MultiOutputISF

        isf = MultiOutputISF.from_spec(spec)
        cf_isf = CharFunction.from_isf(isf)
        cf_0 = CharFunction.from_isf(isf.extension(0))
        cf_1 = CharFunction.from_isf(isf.extension(1))
        n, m = spec.n_inputs, spec.n_outputs
        for x in range(1 << n):
            xbits = [(x >> (n - 1 - i)) & 1 for i in range(n)]
            for y in range(1 << m):
                ybits = [(y >> (m - 1 - j)) & 1 for j in range(m)]
                for ext in (cf_0, cf_1):
                    if ext.evaluate(xbits, ybits):
                        assert cf_isf.evaluate(xbits, ybits) == 1
