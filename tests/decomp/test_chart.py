"""Tests for decomposition charts (Definition 3.6, Tables 2-3, Fig. 7)."""

import pytest
from hypothesis import given, settings

from repro.cf import CharFunction, width_profile
from repro.decomp import (
    DecompositionChart,
    columns_compatible,
    merge_columns,
    table2_spec,
)
from repro.errors import DecompositionError, IncompatibleError
from repro.isf import MultiOutputSpec

from tests.conftest import spec_strategy


class TestTable2:
    def test_mu_is_4(self):
        chart = DecompositionChart(table2_spec(), [0, 1])
        assert chart.column_multiplicity() == 4

    def test_compatible_pairs_match_example34(self):
        chart = DecompositionChart(table2_spec(), [0, 1])
        p = chart.column_patterns()
        compat = {
            (i + 1, j + 1)
            for i in range(4)
            for j in range(i + 1, 4)
            if columns_compatible(p[i], p[j])
        }
        assert compat == {(1, 2), (1, 3), (3, 4)}

    def test_minimized_mu_is_2(self):
        chart = DecompositionChart(table2_spec(), [0, 1])
        mu, cliques = chart.minimized_multiplicity()
        assert mu == 2
        merged = chart.merged(cliques)
        assert merged.column_multiplicity() == 2

    def test_merged_chart_refines(self):
        chart = DecompositionChart(table2_spec(), [0, 1])
        _, cliques = chart.minimized_multiplicity()
        merged = chart.merged(cliques)
        for c in range(chart.num_columns):
            for before, after in zip(chart.column(c), merged.column(c)):
                if before is not None:
                    assert after == before


class TestChartMechanics:
    def test_row_column_layout(self):
        spec = MultiOutputSpec(2, 1, {0b10: (1,), 0b11: (0,)})
        chart = DecompositionChart(spec, [0])  # bound = x1
        assert chart.column(1) == (1, 0)  # x1=1 column over x2 rows
        assert chart.column(0) == (None, None)

    def test_invalid_bound_vars(self):
        spec = MultiOutputSpec(2, 1, {})
        with pytest.raises(DecompositionError):
            DecompositionChart(spec, [0, 0])
        with pytest.raises(DecompositionError):
            DecompositionChart(spec, [5])

    def test_invalid_output(self):
        spec = MultiOutputSpec(2, 1, {})
        with pytest.raises(DecompositionError):
            DecompositionChart(spec, [0], output=3)

    def test_merge_columns_errors(self):
        with pytest.raises(IncompatibleError):
            merge_columns([(0, 1), (1, 1)])

    def test_merge_columns_product(self):
        assert merge_columns([(None, 1, None), (0, None, None)]) == (0, 1, None)

    def test_columns_compatible(self):
        assert columns_compatible((0, None), (None, 1))
        assert not columns_compatible((0, 1), (1, 1))


class TestChartVsBDDWidth:
    @settings(max_examples=25, deadline=None)
    @given(spec_strategy(max_inputs=4, max_outputs=1))
    def test_column_multiplicity_equals_cf_width(self, spec):
        """The CF width at the X1/X2 cut equals the chart's µ.

        For a single-output function with order (X1, X2, y) — the y
        variable below everything — the distinct crossing targets at
        the cut below X1 correspond one-to-one to distinct ternary
        column patterns (the all-zero column cannot occur: a CF is
        total).
        """
        n = spec.n_inputs
        if n < 2:
            return
        bound = [0]  # X1 = {x1}
        chart = DecompositionChart(spec, bound)
        cf = CharFunction.from_spec(spec)
        # Force the order x1 | x2..xn | y.
        from repro.bdd import set_order

        order = [f"x{i + 1}" for i in range(n)] + ["y1"]
        set_order(cf.bdd, [cf.root], order)
        from repro.cf import columns_at_height

        cut_height = cf.num_vars - 1  # below x1
        width = len(columns_at_height(cf.bdd, cf.root, cut_height))
        assert width == chart.column_multiplicity()
