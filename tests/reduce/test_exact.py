"""Tests for the exact minimum clique cover (ablation baseline)."""

import random

import pytest

from repro.errors import ReproError
from repro.reduce import (
    exact_minimum_clique_cover,
    heuristic_clique_cover,
    verify_clique_cover,
)


def random_graph(rng, n, p):
    nodes = list(range(n))
    adjacency = {v: set() for v in nodes}
    for a in nodes:
        for b in nodes:
            if a < b and rng.random() < p:
                adjacency[a].add(b)
                adjacency[b].add(a)
    return nodes, adjacency


class TestExactCover:
    def test_empty(self):
        assert exact_minimum_clique_cover([], {}) == []

    def test_triangle(self):
        nodes, adjacency = [1, 2, 3], {1: {2, 3}, 2: {1, 3}, 3: {1, 2}}
        cover = exact_minimum_clique_cover(nodes, adjacency)
        assert len(cover) == 1

    def test_independent_set(self):
        nodes, adjacency = [1, 2, 3], {1: set(), 2: set(), 3: set()}
        cover = exact_minimum_clique_cover(nodes, adjacency)
        assert len(cover) == 3

    def test_five_cycle_needs_three(self):
        # C5: clique cover number is 3 (cliques are edges/vertices).
        nodes = list(range(5))
        adjacency = {i: {(i + 1) % 5, (i - 1) % 5} for i in nodes}
        cover = exact_minimum_clique_cover(nodes, adjacency)
        assert len(cover) == 3
        assert verify_clique_cover(nodes, adjacency, cover)

    def test_size_limit(self):
        nodes = list(range(30))
        with pytest.raises(ReproError):
            exact_minimum_clique_cover(nodes, {v: set() for v in nodes})

    def test_exact_never_worse_than_heuristic(self):
        rng = random.Random(3)
        for trial in range(25):
            n = rng.randint(1, 12)
            nodes, adjacency = random_graph(rng, n, rng.random())
            exact = exact_minimum_clique_cover(nodes, adjacency)
            greedy = heuristic_clique_cover(nodes, adjacency)
            assert verify_clique_cover(nodes, adjacency, exact), trial
            assert len(exact) <= len(greedy), trial
