"""Unit tests for the don't-care oracle."""

from repro.bdd import BDD, FALSE, TRUE
from repro.cf import CharFunction
from repro.isf import MultiOutputISF, MultiOutputSpec, table1_spec
from repro.reduce import DontCareOracle


class TestDontCareOracle:
    def test_terminals_have_no_dc(self):
        bdd = BDD()
        bdd.add_var("y", kind="output")
        oracle = DontCareOracle(bdd)
        assert not oracle.node_has_dc(TRUE)
        assert not oracle.node_has_dc(FALSE)

    def test_skipped_output_level_is_dc(self):
        bdd = BDD()
        x = bdd.add_var("x")
        y = bdd.add_var("y", kind="output")
        # chi = x (the y level is skipped on the 1-branch): y is dc there.
        chi = bdd.var(x)
        oracle = DontCareOracle(bdd)
        assert oracle.edge_has_dc(-1, chi)

    def test_determined_output_is_not_dc(self):
        bdd = BDD()
        x = bdd.add_var("x")
        y = bdd.add_var("y", kind="output")
        # chi = (y == x): both paths determine y.
        chi = bdd.apply_not(bdd.apply_xor(bdd.var(x), bdd.var(y)))
        oracle = DontCareOracle(bdd)
        assert not oracle.node_has_dc(chi)
        assert not oracle.edge_has_dc(-1, chi)

    def test_two_live_children_is_dc(self):
        bdd = BDD()
        y = bdd.add_var("y", kind="output")
        z = bdd.add_var("z")  # an input *below* the output level
        # y node with two live children (arises with care-value hints:
        # the don't-care region depends on the variable below).
        node = bdd.mk(y, bdd.var(z), TRUE)
        oracle = DontCareOracle(bdd)
        assert oracle.node_has_dc(node)

    def test_table1_cf_has_dc(self):
        cf = CharFunction.from_spec(table1_spec())
        oracle = DontCareOracle(cf.bdd)
        assert oracle.node_has_dc(cf.root)

    def test_completely_specified_cf_has_none(self):
        isf = MultiOutputISF.from_spec(table1_spec()).extension(0)
        cf = CharFunction.from_isf(isf)
        oracle = DontCareOracle(cf.bdd)
        assert not oracle.node_has_dc(cf.root)
        assert not oracle.edge_has_dc(-1, cf.root)

    def test_column_has_dc_counts_section_skips(self):
        # Output above the column's top var was skipped by the edge.
        spec = MultiOutputSpec(2, 1, {0b00: (0,), 0b01: (1,)})
        # f depends only on x2; rows with x1=1 are dc.
        cf = CharFunction.from_spec(spec)
        oracle = DontCareOracle(cf.bdd)
        assert oracle.node_has_dc(cf.root)

    def test_edge_to_false_is_not_dc(self):
        bdd = BDD()
        bdd.add_var("y", kind="output")
        oracle = DontCareOracle(bdd)
        assert not oracle.edge_has_dc(-1, FALSE)
