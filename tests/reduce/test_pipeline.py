"""Tests for the iterated reduction pipeline (sift + support + Alg 3.3)."""

import random

from hypothesis import given, settings

from repro.cf import CharFunction, max_width
from repro.isf import table1_spec
from repro.reduce import full_reduction

from tests.conftest import random_spec, spec_strategy


class TestFullReduction:
    def test_table1_reaches_paper_optimum(self):
        cf = CharFunction.from_spec(table1_spec())
        reduced, report = full_reduction(cf)
        assert report.initial_max_width == 8
        assert report.final_max_width <= 4  # one Alg 3.3 pass already gives 4
        assert reduced.is_wellformed()

    def test_report_structure(self):
        cf = CharFunction.from_spec(table1_spec())
        _, report = full_reduction(cf, max_rounds=5)
        assert 1 <= len(report.rounds) <= 5
        for r in report.rounds:
            assert r.max_width >= 1
            assert r.width_sum >= r.max_width
            assert r.nodes >= 1
        assert report.total_removed_vars >= 0

    def test_no_sift_mode(self):
        cf = CharFunction.from_spec(table1_spec())
        reduced, report = full_reduction(cf, sift=False)
        assert reduced.is_wellformed()
        assert report.final_max_width <= report.initial_max_width

    def test_never_worse_than_single_pass(self):
        rng = random.Random(21)
        from repro.reduce import algorithm_3_3

        for _ in range(10):
            spec = random_spec(rng, n_inputs=4, n_outputs=2)
            cf1 = CharFunction.from_spec(spec)
            single, _ = algorithm_3_3(cf1)
            cf2 = CharFunction.from_spec(spec)
            iterated, _ = full_reduction(cf2, sift=False)
            assert max_width(iterated.bdd, iterated.root) <= max_width(
                single.bdd, single.root
            )

    @settings(max_examples=20, deadline=None)
    @given(spec_strategy())
    def test_soundness(self, spec):
        cf = CharFunction.from_spec(spec)
        reduced, _ = full_reduction(cf)
        assert reduced.is_wellformed()
        for m, values in spec.care.items():
            sample = reduced.sample_output(m)
            for got, want in zip(sample, values):
                if want is not None:
                    assert got == want
