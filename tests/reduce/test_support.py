"""Tests for support-variable reduction (Sect. 3.3)."""

import random

from hypothesis import given, settings

from repro.cf import CharFunction, refines_spec
from repro.isf import MultiOutputSpec, table1_spec
from repro.reduce import reduce_support

from tests.conftest import spec_strategy, random_spec


class TestReduceSupport:
    def test_removes_redundant_variable(self):
        # f depends on x1 only on rows where x2 = 0; with the x2 = 1
        # rows don't care, x2... here we make x2 itself redundant:
        # f(x1, x2) specified only on x2 = 0 and equal to x1.
        care = {0b00: (0,), 0b10: (1,)}
        spec = MultiOutputSpec(2, 1, care)
        cf = CharFunction.from_spec(spec)
        reduced, removed = reduce_support(cf)
        names = {cf.bdd.name_of(v) for v in removed}
        assert names == {"x2"}
        assert "x2" not in {
            cf.bdd.name_of(v) for v in cf.bdd.support(reduced.root)
        }
        assert refines_spec(reduced, spec)

    def test_no_removal_on_tight_function(self):
        # Table 1's function needs all four inputs.
        spec = table1_spec()
        cf = CharFunction.from_spec(spec)
        reduced, removed = reduce_support(cf)
        assert removed == []
        assert reduced.root == cf.root

    def test_parity_with_dc_half(self):
        # f = x1 XOR x2 on x3 = 0 rows, dc on x3 = 1 rows: x3 removable.
        care = {}
        for m in range(8):
            x1, x2, x3 = (m >> 2) & 1, (m >> 1) & 1, m & 1
            if x3 == 0:
                care[m] = (x1 ^ x2,)
        spec = MultiOutputSpec(3, 1, care)
        cf = CharFunction.from_spec(spec)
        reduced, removed = reduce_support(cf)
        assert {cf.bdd.name_of(v) for v in removed} == {"x3"}

    def test_sect53_memory_halving(self):
        """Removing i variables shrinks a single-memory LUT by 2^-i."""
        care = {0b00: (0,), 0b10: (1,)}
        spec = MultiOutputSpec(2, 1, care)
        cf = CharFunction.from_spec(spec)
        reduced, removed = reduce_support(cf)
        from repro.cascade import synthesize_cascade

        before = synthesize_cascade(cf).memory_bits
        after = synthesize_cascade(reduced).memory_bits
        assert after * (2 ** len(removed)) <= before * 2  # one cell each

    @settings(max_examples=25, deadline=None)
    @given(spec_strategy())
    def test_soundness(self, spec):
        cf = CharFunction.from_spec(spec)
        reduced, removed = reduce_support(cf)
        assert reduced.refines(cf)
        assert reduced.is_wellformed()
        support = cf.bdd.support(reduced.root)
        assert all(v not in support for v in removed)
        for m, values in spec.care.items():
            sample = reduced.sample_output(m)
            for got, want in zip(sample, values):
                if want is not None:
                    assert got == want

    def test_greedy_is_top_down(self):
        # Both variables are individually removable but not both; the
        # greedy removes the topmost one.
        # f(x1,x2) care: (0,0)->0, (1,1)->1; dc elsewhere.
        care = {0b00: (0,), 0b11: (1,)}
        spec = MultiOutputSpec(2, 1, care)
        cf = CharFunction.from_spec(spec)
        reduced, removed = reduce_support(cf)
        assert len(removed) == 1
        assert cf.bdd.name_of(removed[0]) == cf.bdd.order()[0]
