"""Tests for Algorithm 3.1 (recursive child merging)."""

import random

from hypothesis import given, settings

from repro.cf import CharFunction, max_width, refines_spec
from repro.isf import table1_spec
from repro.reduce import algorithm_3_1

from tests.conftest import spec_strategy, random_spec


class TestExample35:
    def test_paper_numbers(self):
        """Example 3.5: max width 8 -> 5, non-terminal nodes 15 -> 12."""
        cf = CharFunction.from_spec(table1_spec())
        assert max_width(cf.bdd, cf.root) == 8
        assert cf.num_nodes() == 15
        reduced = algorithm_3_1(cf)
        assert max_width(reduced.bdd, reduced.root) == 5
        assert reduced.num_nodes() == 12

    def test_refinement_and_totality(self):
        spec = table1_spec()
        cf = CharFunction.from_spec(spec)
        reduced = algorithm_3_1(cf)
        assert reduced.refines(cf)
        assert reduced.is_wellformed()
        assert refines_spec(reduced, spec)

    def test_completely_specified_fixed_point(self):
        # Without don't cares the algorithm must return the root as-is.
        from repro.isf import MultiOutputISF

        isf = MultiOutputISF.from_spec(table1_spec()).extension(0)
        cf = CharFunction.from_isf(isf)
        reduced = algorithm_3_1(cf)
        assert reduced.root == cf.root

    def test_idempotent_on_its_output_size(self):
        cf = CharFunction.from_spec(table1_spec())
        once = algorithm_3_1(cf)
        twice = algorithm_3_1(once)
        assert twice.num_nodes() <= once.num_nodes()
        assert twice.refines(once)


class TestRandomized:
    @settings(max_examples=30, deadline=None)
    @given(spec_strategy())
    def test_soundness_properties(self, spec):
        cf = CharFunction.from_spec(spec)
        reduced = algorithm_3_1(cf)
        # (1) refinement, (2) totality, (3) care values preserved.
        assert reduced.refines(cf)
        assert reduced.is_wellformed()
        for m, values in spec.care.items():
            sample = reduced.sample_output(m)
            for got, want in zip(sample, values):
                if want is not None:
                    assert got == want

    def test_node_count_never_increases(self):
        rng = random.Random(5)
        for _ in range(15):
            spec = random_spec(rng, n_inputs=4, n_outputs=2)
            cf = CharFunction.from_spec(spec)
            reduced = algorithm_3_1(cf)
            assert reduced.num_nodes() <= cf.num_nodes()
