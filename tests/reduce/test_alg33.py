"""Tests for Algorithm 3.3 (clique-cover width reduction)."""

import random

from hypothesis import given, settings

from repro.cf import CharFunction, max_width, refines_spec, width_profile
from repro.isf import table1_spec
from repro.reduce import algorithm_3_3

from tests.conftest import spec_strategy, random_spec


class TestExample36:
    def test_paper_numbers(self):
        """Example 3.6: max width 8 -> 4, non-terminal nodes 15 -> 12."""
        cf = CharFunction.from_spec(table1_spec())
        reduced, stats = algorithm_3_3(cf)
        assert max_width(reduced.bdd, reduced.root) == 4
        assert reduced.num_nodes() == 12
        assert stats.merges >= 2
        assert not stats.truncated_heights

    def test_refinement_and_spec(self):
        spec = table1_spec()
        cf = CharFunction.from_spec(spec)
        reduced, _ = algorithm_3_3(cf)
        assert reduced.refines(cf)
        assert reduced.is_wellformed()
        assert refines_spec(reduced, spec)

    def test_beats_or_matches_alg31_width(self):
        """Sect. 5.1: Algorithm 3.3 targets width, 3.1 only node count."""
        from repro.reduce import algorithm_3_1

        cf = CharFunction.from_spec(table1_spec())
        w31 = max_width(*(lambda c: (c.bdd, c.root))(algorithm_3_1(cf)))
        r33, _ = algorithm_3_3(cf)
        assert max_width(r33.bdd, r33.root) <= w31

    def test_completely_specified_untouched(self):
        from repro.isf import MultiOutputISF

        isf = MultiOutputISF.from_spec(table1_spec()).extension(1)
        cf = CharFunction.from_isf(isf)
        reduced, stats = algorithm_3_3(cf)
        assert reduced.root == cf.root
        assert stats.merges == 0


class TestGuards:
    def test_truncation_records_heights(self):
        cf = CharFunction.from_spec(table1_spec())
        reduced, stats = algorithm_3_3(cf, max_pairs=1)
        assert stats.truncated_heights  # the guard kicked in
        assert reduced.refines(cf)
        assert reduced.is_wellformed()

    def test_stats_pair_accounting(self):
        cf = CharFunction.from_spec(table1_spec())
        _, stats = algorithm_3_3(cf)
        assert stats.pairs_checked > 0
        assert stats.heights_processed >= 1


class TestRandomized:
    @settings(max_examples=25, deadline=None)
    @given(spec_strategy())
    def test_soundness_properties(self, spec):
        cf = CharFunction.from_spec(spec)
        reduced, _ = algorithm_3_3(cf)
        assert reduced.refines(cf)
        assert reduced.is_wellformed()
        for m, values in spec.care.items():
            sample = reduced.sample_output(m)
            for got, want in zip(sample, values):
                if want is not None:
                    assert got == want

    def test_max_width_never_increases(self):
        rng = random.Random(9)
        for _ in range(15):
            spec = random_spec(rng, n_inputs=4, n_outputs=2)
            cf = CharFunction.from_spec(spec)
            reduced, _ = algorithm_3_3(cf)
            assert max_width(reduced.bdd, reduced.root) <= max_width(
                cf.bdd, cf.root
            )

    def test_widths_reduced_pointwise_at_top(self):
        # The first processed height (t-1) can only shrink.
        rng = random.Random(11)
        for _ in range(10):
            spec = random_spec(rng, n_inputs=3, n_outputs=2)
            cf = CharFunction.from_spec(spec)
            before = width_profile(cf.bdd, cf.root)
            reduced, _ = algorithm_3_3(cf)
            after = width_profile(reduced.bdd, reduced.root)
            t = cf.num_vars
            assert after[t - 1] <= before[t - 1]
