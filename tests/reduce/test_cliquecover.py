"""Tests for Algorithm 3.2 (heuristic minimal clique cover)."""

import random

from repro.reduce import (
    build_compatibility_graph,
    heuristic_clique_cover,
    verify_clique_cover,
)


def cover_of(nodes, edges):
    adjacency = {v: set() for v in nodes}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    return adjacency, heuristic_clique_cover(nodes, adjacency)


class TestCliqueCover:
    def test_empty_graph(self):
        adjacency, cover = cover_of([], [])
        assert cover == []

    def test_isolated_nodes_are_singletons(self):
        adjacency, cover = cover_of([1, 2, 3], [])
        assert cover == [[1], [2], [3]]

    def test_triangle_is_one_clique(self):
        adjacency, cover = cover_of([1, 2, 3], [(1, 2), (2, 3), (1, 3)])
        assert len(cover) == 1
        assert sorted(cover[0]) == [1, 2, 3]

    def test_path_graph(self):
        # 1-2-3: optimal cover is 2 cliques.
        adjacency, cover = cover_of([1, 2, 3], [(1, 2), (2, 3)])
        assert len(cover) == 2
        assert verify_clique_cover([1, 2, 3], adjacency, cover)

    def test_paper_fig7_structure(self):
        # Example 3.4: edges {1,2}, {1,3}, {3,4} -> cover of size 2.
        adjacency, cover = cover_of([1, 2, 3, 4], [(1, 2), (1, 3), (3, 4)])
        assert len(cover) == 2
        assert verify_clique_cover([1, 2, 3, 4], adjacency, cover)

    def test_deterministic(self):
        nodes = list(range(12))
        rng = random.Random(1)
        edges = [
            (a, b)
            for a in nodes
            for b in nodes
            if a < b and rng.random() < 0.4
        ]
        covers = [cover_of(nodes, edges)[1] for _ in range(3)]
        assert covers[0] == covers[1] == covers[2]

    def test_random_graphs_give_valid_covers(self):
        rng = random.Random(7)
        for trial in range(20):
            n = rng.randint(1, 14)
            nodes = list(range(n))
            edges = [
                (a, b)
                for a in nodes
                for b in nodes
                if a < b and rng.random() < 0.5
            ]
            adjacency, cover = cover_of(nodes, edges)
            assert verify_clique_cover(nodes, adjacency, cover), trial

    def test_verify_rejects_non_clique(self):
        adjacency, _ = cover_of([1, 2, 3], [(1, 2)])
        assert not verify_clique_cover([1, 2, 3], adjacency, [[1, 2, 3]])

    def test_verify_rejects_missing_node(self):
        adjacency, _ = cover_of([1, 2], [(1, 2)])
        assert not verify_clique_cover([1, 2], adjacency, [[1]])


class TestBuildGraph:
    def test_basic(self):
        adjacency, truncated = build_compatibility_graph(
            [1, 2, 3], lambda a, b: (a + b) % 2 == 1
        )
        assert not truncated
        assert adjacency[1] == {2}
        assert adjacency[2] == {1, 3}

    def test_truncation(self):
        calls = []

        def compat(a, b):
            calls.append((a, b))
            return True

        items = list(range(100))
        adjacency, truncated = build_compatibility_graph(
            items, compat, max_pairs=10
        )
        assert truncated
        assert len(calls) <= 10
        # Untouched items remain isolated but present.
        assert all(v in adjacency for v in items)
