"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.isf.pla
import repro.utils.bitops
import repro.utils.tables

MODULES = [repro.utils.bitops, repro.utils.tables, repro.isf.pla]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, raise_on_error=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
