"""Unit tests for DOT export."""

from repro.bdd import BDD, to_dot


def small_bdd():
    bdd = BDD()
    x = bdd.add_var("x1")
    y = bdd.add_var("y1", kind="output")
    f = bdd.mk(x, bdd.mk(y, 1, 0), bdd.mk(y, 0, 1))
    return bdd, f


class TestToDot:
    def test_contains_nodes_and_edges(self):
        bdd, f = small_bdd()
        dot = to_dot(bdd, {"chi": f})
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"root_chi"' in dot
        assert 'label="x1"' in dot
        assert "style=dotted" in dot and "style=solid" in dot

    def test_omit_false_default(self):
        bdd, f = small_bdd()
        dot = to_dot(bdd, {"chi": f})
        assert '"n0"' not in dot

    def test_include_false(self):
        bdd, f = small_bdd()
        dot = to_dot(bdd, {"chi": f}, omit_false=False)
        assert '"n0"' in dot

    def test_output_vars_drawn_as_boxes(self):
        bdd, f = small_bdd()
        dot = to_dot(bdd, {"chi": f})
        assert "shape=box" in dot  # y1 nodes
        assert "shape=circle" in dot  # x1 node

    def test_sequence_roots(self):
        bdd, f = small_bdd()
        dot = to_dot(bdd, [f])
        assert '"root_f0"' in dot

    def test_ranks_by_level(self):
        bdd, f = small_bdd()
        dot = to_dot(bdd, {"chi": f})
        assert dot.count("rank=same") == 2
