"""Differential tests for the word-parallel truth-table fast path.

Every property is checked with the fast path ON and OFF against the
recursive reference engine (:mod:`repro.bdd.reference`) — within one
manager, canonicity turns semantic agreement into id equality.  The
suite also pins parity across the events that rebuild or invalidate
the window state: sifting (epoch moves), garbage collection (memos
dropped, generations bumped), and governor aborts mid-operation.
"""

from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, from_truth_table, reference, sift
from repro.bdd import tt as _tt
from repro.bdd.governor import Budget
from repro.errors import ResourceLimitError
from repro.isf.compat import compatible_columns, ordered_total

from tests.conftest import brute_force_truth

N_VARS = 5  # window (default 6) covers the whole order
N_DEEP = 9  # strictly wider than the window: partial-window paths
TABLE = st.lists(st.integers(0, 1), min_size=1 << N_VARS, max_size=1 << N_VARS)
DEEP_TABLE = st.lists(st.integers(0, 1), min_size=1 << N_DEEP, max_size=1 << N_DEEP)


@contextmanager
def fastpath(on: bool):
    saved = _tt.ENABLED
    _tt.ENABLED = on
    try:
        yield
    finally:
        _tt.ENABLED = saved


def build(table, n_vars, n_outputs=2):
    """Manager with a mixed input/output order and one function."""
    bdd = BDD()
    vids = bdd.add_vars([f"x{i}" for i in range(n_vars - n_outputs)])
    vids += bdd.add_vars([f"y{i}" for i in range(n_outputs)], kind="output")
    return bdd, vids, from_truth_table(bdd, vids, table)


class TestKernelParity:
    @settings(max_examples=40, deadline=None)
    @given(TABLE, TABLE)
    def test_ops_same_node_on_and_off(self, ta, tb):
        bdd, vids, f = build(ta, N_VARS)
        g = from_truth_table(bdd, vids, tb)
        gid = bdd.var_group(vids[:2])
        for op, ref in (
            (lambda: bdd.apply_and(f, g), lambda: reference.ref_apply_and(bdd, f, g)),
            (lambda: bdd.apply_xor(f, g), lambda: reference.ref_apply_xor(bdd, f, g)),
            (lambda: bdd.exists(f, gid), lambda: reference.ref_exists(bdd, f, gid)),
            (lambda: bdd.forall(g, gid), lambda: reference.ref_forall(bdd, g, gid)),
        ):
            with fastpath(True):
                fast = op()
            with fastpath(False):
                slow = op()
            assert fast == slow == ref()

    @settings(max_examples=15, deadline=None)
    @given(DEEP_TABLE)
    def test_partial_window_ops(self, table):
        # Nodes above the window take the node path, nodes inside it
        # the word path — parity must hold across the seam.
        bdd, vids, f = build(table, N_DEEP)
        g = bdd.apply_not(bdd.cofactor(f, vids[0], 1))
        gid = bdd.var_group(vids[-3:])
        with fastpath(True):
            fast = (bdd.apply_and(f, g), bdd.exists(f, gid))
        with fastpath(False):
            slow = (bdd.apply_and(f, g), bdd.exists(f, gid))
        assert fast == slow
        assert fast[0] == reference.ref_apply_and(bdd, f, g)
        assert fast[1] == reference.ref_exists(bdd, f, gid)


class TestCompatParity:
    @settings(max_examples=40, deadline=None)
    @given(TABLE, TABLE)
    def test_total_and_compat_on_off_vs_seed(self, ta, tb):
        bdd, vids, a = build(ta, N_VARS)
        b = from_truth_table(bdd, vids, tb)
        expect_tot = reference.seed_ordered_total(bdd, a)
        expect_cc = reference.seed_compatible_columns(bdd, a, b)
        for on in (True, False):
            with fastpath(on):
                bdd.clear_cache()
                assert ordered_total(bdd, a) is expect_tot
                assert compatible_columns(bdd, a, b) is expect_cc

    @settings(max_examples=10, deadline=None)
    @given(DEEP_TABLE, DEEP_TABLE)
    def test_compat_partial_window(self, ta, tb):
        bdd, vids, a = build(ta, N_DEEP)
        b = from_truth_table(bdd, vids, tb)
        verdicts = []
        for on in (True, False):
            with fastpath(on):
                bdd.clear_cache()
                verdicts.append(compatible_columns(bdd, a, b))
        assert verdicts[0] is verdicts[1]
        assert verdicts[0] is reference.seed_compatible_columns(bdd, a, b)

    @settings(max_examples=15, deadline=None)
    @given(TABLE, TABLE)
    def test_parity_survives_sifting(self, ta, tb):
        # Sifting moves the reorder epoch: the window descriptor and
        # the word memos must rebuild, not serve stale answers.  The
        # verdict itself may legitimately flip — ordered totality
        # quantifies along the variable order, and sifting arbitrary
        # functions can lift an output variable above an input — so
        # the pin is agreement with a *fresh* reference walk on the
        # new order, not invariance of the pre-sift answer.
        bdd, vids, a = build(ta, N_VARS)
        b = from_truth_table(bdd, vids, tb)
        with fastpath(True):
            compatible_columns(bdd, a, b)  # warm the pre-sift memos
            sift(bdd, [a, b])
            after = compatible_columns(bdd, a, b)
        bdd._ref_cache = {}  # the reference memo is not epoch-aware
        assert after is reference.seed_compatible_columns(bdd, a, b)
        with fastpath(False):
            bdd.clear_cache()
            assert compatible_columns(bdd, a, b) is after

    @settings(max_examples=15, deadline=None)
    @given(TABLE, TABLE)
    def test_parity_survives_collect(self, ta, tb):
        bdd, vids, a = build(ta, N_VARS)
        b = from_truth_table(bdd, vids, tb)
        with fastpath(True):
            table_before = brute_force_truth(bdd, a, vids)
            _ = compatible_columns(bdd, a, b)  # warm word memos
            garbage = bdd.apply_xor(a, b)
            del garbage
            bdd.collect([a, b])
            assert brute_force_truth(bdd, a, vids) == table_before
            assert compatible_columns(bdd, a, b) is (
                reference.seed_compatible_columns(bdd, a, b)
            )
            bdd.check_invariants([a, b])


class TestGovernorAborts:
    def test_abort_leaves_manager_consistent(self):
        # A tiny step budget must abort mid-operation on either code
        # path, and the manager must stay fully usable afterwards.
        rng_table = [(i * 2654435761) >> 7 & 1 for i in range(1 << N_DEEP)]
        alt_table = [(i * 40503) >> 3 & 1 for i in range(1 << N_DEEP)]
        for on in (True, False):
            with fastpath(on):
                bdd, vids, f = build(rng_table, N_DEEP)
                g = from_truth_table(bdd, vids, alt_table)
                bdd.clear_cache()
                with pytest.raises(ResourceLimitError):
                    with Budget(max_steps=10):
                        for _ in range(200):
                            bdd.apply_xor(f, g)
                            compatible_columns(bdd, f, g)
                            bdd.clear_cache()
                # No budget: the same queries now run to completion and
                # agree with the reference engine.
                assert bdd.apply_xor(f, g) == reference.ref_apply_xor(bdd, f, g)
                assert compatible_columns(bdd, f, g) is (
                    reference.seed_compatible_columns(bdd, f, g)
                )
                bdd.check_invariants([f, g])

    def test_fast_path_charges_are_budgeted(self):
        # The word path must charge enough steps that max_steps still
        # bounds it: an unbounded-looking budget of a few steps aborts.
        table = [(i * 2654435761) >> 5 & 1 for i in range(1 << N_DEEP)]
        with fastpath(True):
            bdd, vids, f = build(table, N_DEEP)
            g = from_truth_table(bdd, vids, table[::-1])
            bdd.clear_cache()
            with pytest.raises(ResourceLimitError):
                with Budget(max_steps=5):
                    for _ in range(50):
                        compatible_columns(bdd, f, g)
                        bdd.clear_cache()
