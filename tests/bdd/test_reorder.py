"""Unit tests for in-place reordering and sifting."""

import random

import pytest

from repro.bdd import BDD, from_truth_table, set_order, sift
from repro.bdd.reorder import SiftSession
from repro.errors import OrderingError

from tests.conftest import brute_force_truth


def random_function(seed, n=5):
    rng = random.Random(seed)
    bdd = BDD()
    vids = bdd.add_vars([f"x{i}" for i in range(n)])
    table = [rng.randint(0, 1) for _ in range(1 << n)]
    f = from_truth_table(bdd, vids, table)
    return bdd, vids, f, table


class TestSwap:
    def test_swap_preserves_semantics(self):
        for seed in range(10):
            bdd, vids, f, table = random_function(seed)
            session = SiftSession(bdd, [f])
            for level in (0, 2, 3, 1, 0, 3):
                session.swap(level)
                assert brute_force_truth(bdd, f, vids) == table, (seed, level)
                bdd.check_invariants([f])

    def test_swap_updates_order(self):
        bdd, vids, f, _ = random_function(1)
        session = SiftSession(bdd, [f])
        session.swap(0)
        assert bdd.order()[:2] == ["x1", "x0"]

    def test_swap_out_of_range(self):
        bdd, vids, f, _ = random_function(2)
        session = SiftSession(bdd, [f])
        with pytest.raises(OrderingError):
            session.swap(len(vids) - 1)
        with pytest.raises(OrderingError):
            session.swap(-1)

    def test_size_tracking_is_exact(self):
        for seed in range(8):
            bdd, vids, f, _ = random_function(seed)
            session = SiftSession(bdd, [f])
            for level in (1, 3, 0, 2, 1):
                session.swap(level)
                assert session.size == bdd.count_nodes(f), seed
                assert session.size == bdd.num_alive_nodes(), seed

    def test_swap_with_multiple_roots(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b", "c"])
        f = bdd.apply_and(bdd.var(vids[0]), bdd.var(vids[2]))
        g = bdd.apply_xor(bdd.var(vids[1]), bdd.var(vids[2]))
        tf = brute_force_truth(bdd, f, vids)
        tg = brute_force_truth(bdd, g, vids)
        session = SiftSession(bdd, [f, g])
        session.swap(0)
        session.swap(1)
        assert brute_force_truth(bdd, f, vids) == tf
        assert brute_force_truth(bdd, g, vids) == tg


class TestSetOrder:
    def test_reaches_target_order(self):
        bdd, vids, f, table = random_function(3)
        target = ["x3", "x0", "x4", "x2", "x1"]
        set_order(bdd, [f], target)
        assert bdd.order() == target
        assert brute_force_truth(bdd, f, vids) == table

    def test_rejects_non_permutation(self):
        bdd, vids, f, _ = random_function(4)
        with pytest.raises(OrderingError):
            set_order(bdd, [f], ["x0", "x1"])


class TestSift:
    def test_sift_preserves_semantics(self):
        bdd, vids, f, table = random_function(5)
        sift(bdd, [f])
        assert brute_force_truth(bdd, f, vids) == table
        bdd.check_invariants([f])

    def test_sift_improves_bad_order(self):
        # f = x0·x3 | x1·x4 | x2·x5 with pairs maximally separated:
        # the classic case where sifting shrinks the BDD.
        bdd = BDD()
        vids = bdd.add_vars([f"x{i}" for i in range(6)])
        f = 0
        for i in range(3):
            f = bdd.apply_or(
                f, bdd.apply_and(bdd.var(vids[i]), bdd.var(vids[i + 3]))
            )
        before = bdd.count_nodes(f)
        sift(bdd, [f])
        after = bdd.count_nodes(f)
        assert after < before

    def test_precedence_respected(self):
        bdd, vids, f, table = random_function(6)
        # Force x0 above x4 and x2 above x3.
        precedence = [(vids[0], vids[4]), (vids[2], vids[3])]
        sift(bdd, [f], precedence=precedence)
        for above, below in precedence:
            assert bdd.level_of_vid(above) < bdd.level_of_vid(below)
        assert brute_force_truth(bdd, f, vids) == table

    def test_precedence_violated_initially(self):
        bdd, vids, f, _ = random_function(7)
        set_order(bdd, [f], ["x4", "x3", "x2", "x1", "x0"])
        with pytest.raises(OrderingError):
            sift(bdd, [f], precedence=[(vids[0], vids[4])])

    def test_custom_cost_function(self):
        bdd, vids, f, table = random_function(8)
        calls = []

        def cost(bdd_, roots):
            calls.append(1)
            return float(bdd_.count_nodes(roots[0]))

        sift(bdd, [f], cost_fn=cost)
        assert calls  # the cost function was consulted
        assert brute_force_truth(bdd, f, vids) == table

    def test_multiple_rounds(self):
        bdd, vids, f, table = random_function(9)
        sift(bdd, [f], max_rounds=3)
        assert brute_force_truth(bdd, f, vids) == table
