"""Property-based tests of the BDD engine (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, FALSE, TRUE, from_truth_table, set_order, sift

from tests.conftest import brute_force_truth

N_VARS = 4
TABLE = st.lists(st.integers(0, 1), min_size=1 << N_VARS, max_size=1 << N_VARS)


def build(table):
    bdd = BDD()
    vids = bdd.add_vars([f"x{i}" for i in range(N_VARS)])
    return bdd, vids, from_truth_table(bdd, vids, table)


class TestAlgebraicLaws:
    @settings(max_examples=60, deadline=None)
    @given(TABLE, TABLE)
    def test_and_or_against_python(self, ta, tb):
        bdd, vids, f = build(ta)
        g = from_truth_table(bdd, vids, tb)
        t_and = brute_force_truth(bdd, bdd.apply_and(f, g), vids)
        t_or = brute_force_truth(bdd, bdd.apply_or(f, g), vids)
        t_xor = brute_force_truth(bdd, bdd.apply_xor(f, g), vids)
        assert t_and == [a & b for a, b in zip(ta, tb)]
        assert t_or == [a | b for a, b in zip(ta, tb)]
        assert t_xor == [a ^ b for a, b in zip(ta, tb)]

    @settings(max_examples=60, deadline=None)
    @given(TABLE)
    def test_canonicity(self, table):
        # Two structurally different construction orders give the same node.
        bdd, vids, f = build(table)
        g = FALSE
        for m in range(1 << N_VARS):
            if table[m]:
                cube = TRUE
                for i, v in enumerate(reversed(vids)):
                    bit = (m >> i) & 1
                    lit = bdd.var(v) if bit else bdd.nvar(v)
                    cube = bdd.apply_and(cube, lit)
                g = bdd.apply_or(g, cube)
        assert f == g

    @settings(max_examples=40, deadline=None)
    @given(TABLE)
    def test_shannon_expansion(self, table):
        bdd, vids, f = build(table)
        x = vids[0]
        rebuilt = bdd.ite(bdd.var(x), bdd.cofactor(f, x, 1), bdd.cofactor(f, x, 0))
        assert rebuilt == f

    @settings(max_examples=40, deadline=None)
    @given(TABLE)
    def test_quantifier_duality(self, table):
        bdd, vids, f = build(table)
        gid = bdd.var_group(vids[:2])
        lhs = bdd.apply_not(bdd.exists(f, gid))
        rhs = bdd.forall(bdd.apply_not(f), gid)
        assert lhs == rhs

    @settings(max_examples=40, deadline=None)
    @given(TABLE)
    def test_sat_count_matches_table(self, table):
        bdd, vids, f = build(table)
        assert bdd.sat_count(f, vids=vids) == sum(table)


class TestReorderProperties:
    @settings(max_examples=25, deadline=None)
    @given(TABLE, st.permutations(list(range(N_VARS))))
    def test_set_order_preserves_semantics(self, table, perm):
        bdd, vids, f = build(table)
        set_order(bdd, [f], [f"x{i}" for i in perm])
        assert brute_force_truth(bdd, f, vids) == table
        bdd.check_invariants([f])

    @settings(max_examples=15, deadline=None)
    @given(TABLE)
    def test_sift_preserves_semantics(self, table):
        bdd, vids, f = build(table)
        sift(bdd, [f])
        assert brute_force_truth(bdd, f, vids) == table
        bdd.check_invariants([f])

    @settings(max_examples=15, deadline=None)
    @given(TABLE)
    def test_sift_never_increases_size(self, table):
        bdd, vids, f = build(table)
        before = bdd.count_nodes(f)
        sift(bdd, [f])
        assert bdd.count_nodes(f) <= before
