"""The iterative kernel survives BDDs far deeper than the recursion limit.

Every operation here runs over chains of 2200+ variables — more than
double CPython's default ~1000-frame recursion ceiling — without
raising RecursionError and without touching ``sys.setrecursionlimit``.
This is the acceptance test for the explicit-stack evaluator: the seed
engine's recursive bodies died on all of these.
"""

import sys

from repro.bdd import BDD, FALSE, TRUE

N_DEEP = 2200


def _chain_manager():
    # The whole point: deeper than any plausible recursion limit setting.
    assert N_DEEP > sys.getrecursionlimit()
    bdd = BDD()
    vids = bdd.add_vars([f"x{i}" for i in range(N_DEEP)])
    return bdd, vids


def test_deep_conjunction_chain():
    bdd, vids = _chain_manager()
    f = bdd.apply_and_many(bdd.var(v) for v in vids)
    assert f not in (FALSE, TRUE)
    assert bdd.count_nodes(f) == N_DEEP
    assert bdd.evaluate(f, {v: 1 for v in vids}) == 1
    assert bdd.evaluate(f, {v: (0 if v == vids[-1] else 1) for v in vids}) == 0


def test_deep_binary_ops_and_not():
    bdd, vids = _chain_manager()
    f = bdd.apply_and_many(bdd.var(v) for v in vids)
    g = bdd.apply_or_many(bdd.var(v) for v in vids)
    assert bdd.apply_and(f, g) == f  # f implies g
    assert bdd.apply_or(f, g) == g
    nf = bdd.apply_not(f)
    assert bdd.apply_not(nf) == f
    assert bdd.apply_xor(f, nf) == TRUE
    assert bdd.apply_xor(f, f) == FALSE


def test_deep_ite_and_cofactor():
    bdd, vids = _chain_manager()
    f = bdd.apply_and_many(bdd.var(v) for v in vids)
    g = bdd.apply_or_many(bdd.var(v) for v in vids)
    assert bdd.ite(f, g, FALSE) == f
    mid = vids[N_DEEP // 2]
    hi = bdd.cofactor(f, mid, 1)
    lo = bdd.cofactor(f, mid, 0)
    assert lo == FALSE
    assert bdd.ite(bdd.var(mid), hi, lo) == f
    assert bdd.restrict(f, {vids[0]: 1, vids[-1]: 1}) == bdd.cofactor(
        bdd.cofactor(f, vids[0], 1), vids[-1], 1
    )


def test_deep_quantification():
    bdd, vids = _chain_manager()
    f = bdd.apply_and_many(bdd.var(v) for v in vids)
    gid = bdd.var_group(vids[: N_DEEP // 2])
    ex = bdd.exists(f, gid)
    fa = bdd.forall(f, gid)
    # Exists drops the quantified prefix; forall of a conjunction that
    # needs those variables set is unsatisfiable on them.
    assert ex == bdd.apply_and_many(bdd.var(v) for v in vids[N_DEEP // 2 :])
    assert fa == FALSE


def test_deep_compose():
    bdd, vids = _chain_manager()
    f = bdd.apply_and_many(bdd.var(v) for v in vids)
    # Substitute the last variable by the first: the chain collapses
    # onto one fewer distinct variable but stays 2199 nodes deep.
    g = bdd.compose(f, vids[-1], bdd.var(vids[0]))
    assert bdd.count_nodes(g) == N_DEEP - 1
    assert bdd.evaluate(g, {v: 1 for v in vids}) == 1


def test_deep_counting_and_cubes():
    bdd, vids = _chain_manager()
    f = bdd.apply_and_many(bdd.var(v) for v in vids)
    assert bdd.sat_count(f) == 1
    cubes = list(bdd.iter_onset_cubes(f))
    assert len(cubes) == 1
    assert all(bit == 1 for bit in cubes[0].values())
    assert len(cubes[0]) == N_DEEP
