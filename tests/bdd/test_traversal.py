"""Unit tests for structural traversals (profiles, crossing edges)."""

from repro.bdd import (
    BDD,
    FALSE,
    TRUE,
    count_paths_to_one,
    crossing_targets,
    from_truth_table,
    internal_nodes,
    level_profile,
    nodes_by_level,
)


def chain_function():
    """f = x0 AND x1 AND x2: a 3-node chain."""
    bdd = BDD()
    vids = bdd.add_vars(["x0", "x1", "x2"])
    f = TRUE
    for v in reversed(vids):
        f = bdd.mk(v, FALSE, f)
    return bdd, vids, f


class TestProfiles:
    def test_internal_nodes(self):
        bdd, vids, f = chain_function()
        assert len(internal_nodes(bdd, [f])) == 3

    def test_nodes_by_level(self):
        bdd, vids, f = chain_function()
        by_level = nodes_by_level(bdd, [f])
        assert sorted(by_level) == [0, 1, 2]
        assert all(len(v) == 1 for v in by_level.values())

    def test_level_profile(self):
        bdd, vids, f = chain_function()
        assert level_profile(bdd, [f]) == [1, 1, 1]

    def test_profile_with_skipped_level(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b", "c"])
        f = bdd.apply_and(bdd.var(vids[0]), bdd.var(vids[2]))  # b unused
        assert level_profile(bdd, [f]) == [1, 0, 1]


class TestCrossingTargets:
    def test_chain(self):
        bdd, vids, f = chain_function()
        sections = crossing_targets(bdd, [f])
        # Section 0 (above everything): just the root.
        assert sections[0] == {f}
        # Section 3 (above terminals): only TRUE (FALSE is excluded).
        assert sections[3] == {TRUE}

    def test_long_edge_counted_in_every_section(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b", "c"])
        # f = a OR (b AND c): the a-node's 1-edge jumps to TRUE.
        f = bdd.apply_or(bdd.var(vids[0]), bdd.apply_and(bdd.var(vids[1]), bdd.var(vids[2])))
        sections = crossing_targets(bdd, [f])
        # TRUE receives a long edge from the top node, so it appears in
        # sections 1, 2 and 3.
        for s in (1, 2, 3):
            assert TRUE in sections[s]

    def test_count_true_false(self):
        bdd, vids, f = chain_function()
        sections = crossing_targets(bdd, [f], count_true=False)
        assert sections[3] == set()

    def test_false_never_counted(self):
        bdd, vids, f = chain_function()
        for section in crossing_targets(bdd, [f]):
            assert FALSE not in section

    def test_multiple_roots(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b"])
        f = bdd.var(vids[0])
        g = bdd.var(vids[1])
        sections = crossing_targets(bdd, [f, g])
        assert f in sections[0]
        # g's root sits at level 1; the external edge crosses both
        # sections above it.
        assert g in sections[0] and g in sections[1]


class TestCountPaths:
    def test_chain_has_one_path(self):
        bdd, vids, f = chain_function()
        assert count_paths_to_one(bdd, f) == 1

    def test_xor_paths(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b"])
        f = bdd.apply_xor(bdd.var(vids[0]), bdd.var(vids[1]))
        assert count_paths_to_one(bdd, f) == 2

    def test_terminals(self):
        bdd = BDD()
        assert count_paths_to_one(bdd, FALSE) == 0
        assert count_paths_to_one(bdd, TRUE) == 1
