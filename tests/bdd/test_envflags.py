"""Pinning tests for the environment-knob fixes.

Two regressions guarded here:

* ``env_flag`` used to compare case-sensitively, so
  ``REPRO_TT_FASTPATH=False`` (or ``OFF``, or ``" 0 "``) silently
  *enabled* the feature it was meant to disable.
* ``tt.ENABLED`` / ``tt.MAX_WINDOW`` used to be frozen at import, so a
  long-lived daemon ignored environment changes made after startup.
  They are now lazy (``tt.enabled()`` / ``tt.max_window()``) with an
  explicit ``tt.overrides()`` extent for per-request settings.
"""

import pytest

from repro._config import env_flag, env_int
from repro.bdd import tt


@pytest.fixture(autouse=True)
def clean_overrides():
    """Every test starts and ends with the lazy env-read defaults."""
    saved = (tt.ENABLED, tt.MAX_WINDOW)
    tt.ENABLED = None
    tt.MAX_WINDOW = None
    yield
    tt.ENABLED, tt.MAX_WINDOW = saved


class TestEnvFlag:
    @pytest.mark.parametrize(
        "raw",
        ["0", "false", "False", "FALSE", "no", "No", "NO", "off", "OFF",
         "Off", " 0 ", "\tfalse\n", " Off "],
    )
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_X", raw)
        assert env_flag("REPRO_X", default=True) is False

    @pytest.mark.parametrize("raw", ["1", "true", "True", "yes", "on", "anything"])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_X", raw)
        assert env_flag("REPRO_X", default=False) is True

    @pytest.mark.parametrize("default", [True, False])
    def test_unset_and_empty_yield_default(self, monkeypatch, default):
        monkeypatch.delenv("REPRO_X", raising=False)
        assert env_flag("REPRO_X", default) is default
        monkeypatch.setenv("REPRO_X", "")
        assert env_flag("REPRO_X", default) is default
        monkeypatch.setenv("REPRO_X", "   ")
        assert env_flag("REPRO_X", default) is default


class TestEnvInt:
    def test_reads_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_N", " 12 ")
        assert env_int("REPRO_N", 5) == 12

    def test_malformed_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_N", "twelve")
        assert env_int("REPRO_N", 5) == 5

    def test_clamping(self, monkeypatch):
        monkeypatch.setenv("REPRO_N", "99")
        assert env_int("REPRO_N", 5, lo=1, hi=16) == 16
        monkeypatch.setenv("REPRO_N", "-3")
        assert env_int("REPRO_N", 5, lo=1, hi=16) == 1

    def test_unset_default_is_not_clamp_exempt(self, monkeypatch):
        monkeypatch.delenv("REPRO_N", raising=False)
        assert env_int("REPRO_N", 99, lo=1, hi=16) == 16


class TestLazyTTKnobs:
    def test_fastpath_env_change_after_import(self, monkeypatch):
        """The regression: the daemon must honor env changes made after
        the module was imported."""
        monkeypatch.setenv("REPRO_TT_FASTPATH", "1")
        assert tt.enabled() is True
        monkeypatch.setenv("REPRO_TT_FASTPATH", "OFF")
        assert tt.enabled() is False
        monkeypatch.setenv("REPRO_TT_FASTPATH", "False")
        assert tt.enabled() is False

    def test_window_env_change_after_import(self, monkeypatch):
        monkeypatch.setenv("REPRO_TT_WINDOW", "6")
        assert tt.max_window() == 6
        monkeypatch.setenv("REPRO_TT_WINDOW", "12")
        assert tt.max_window() == 12
        monkeypatch.setenv("REPRO_TT_WINDOW", "999")
        assert tt.max_window() == 16  # clamped
        monkeypatch.setenv("REPRO_TT_WINDOW", "garbage")
        assert tt.max_window() == 8  # default

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TT_FASTPATH", "0")
        monkeypatch.setenv("REPRO_TT_WINDOW", "4")
        with tt.overrides(fastpath=True, window=10):
            assert tt.enabled() is True
            assert tt.max_window() == 10
        assert tt.enabled() is False
        assert tt.max_window() == 4

    def test_overrides_nest_and_restore(self):
        with tt.overrides(fastpath=False):
            assert tt.enabled() is False
            with tt.overrides(window=3):
                assert tt.enabled() is False  # outer knob still pinned
                assert tt.max_window() == 3
            assert tt.MAX_WINDOW is None
        assert tt.ENABLED is None

    def test_overrides_restore_on_exception(self):
        with pytest.raises(RuntimeError):
            with tt.overrides(fastpath=False, window=2):
                raise RuntimeError("boom")
        assert tt.ENABLED is None
        assert tt.MAX_WINDOW is None

    def test_live_manager_rebuilds_state_on_window_change(self):
        """A live manager's window descriptor follows the knob — it is
        not frozen into a stale TTState."""
        from repro.bdd import BDD, FALSE, TRUE

        bdd = BDD()
        vids = bdd.add_vars([f"x{i}" for i in range(12)])
        # A cone over the bottom 4 levels: inside both windows below.
        f = TRUE
        for v in reversed(vids[8:]):
            f = bdd.mk(v, FALSE, f)
        with tt.overrides(window=4):
            st4 = tt.state(bdd)
            assert st4 is not None and st4.width == 4
            w4 = tt.word_of(bdd, st4, f)
            assert tt.node_of_word(bdd, st4, w4) == f
        with tt.overrides(window=9):
            st9 = tt.state(bdd)
            assert st9 is not None and st9.width == 9
            # The word semantics stay correct across the rebuild.
            w = tt.word_of(bdd, st9, f)
            assert tt.node_of_word(bdd, st9, w) == f
