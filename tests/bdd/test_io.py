"""Tests for BDD / CharFunction serialization."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, from_truth_table
from repro.bdd.io import (
    dump_charfunction,
    dump_forest,
    load_charfunction,
    load_forest,
)
from repro.cf import CharFunction, max_width, width_profile
from repro.errors import BDDError
from repro.isf import table1_spec
from repro.reduce import algorithm_3_3

from tests.conftest import brute_force_truth


class TestForestRoundtrip:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
    def test_roundtrip_semantics(self, table):
        bdd = BDD()
        vids = bdd.add_vars([f"x{i}" for i in range(4)])
        f = from_truth_table(bdd, vids, table)
        text = dump_forest(bdd, {"f": f})
        bdd2, roots = load_forest(text)
        vids2 = [bdd2.vid(f"x{i}") for i in range(4)]
        assert brute_force_truth(bdd2, roots["f"], vids2) == table

    def test_terminal_roots(self):
        bdd = BDD()
        bdd.add_var("x")
        text = dump_forest(bdd, {"t": 1, "f": 0})
        _, roots = load_forest(text)
        assert roots == {"t": 1, "f": 0}

    def test_shared_structure_preserved(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b", "c"])
        f = bdd.apply_xor(bdd.var(vids[0]), bdd.var(vids[2]))
        g = bdd.apply_and(f, bdd.var(vids[1]))
        text = dump_forest(bdd, {"f": f, "g": g})
        nodes = json.loads(text)["nodes"]
        bdd2, roots = load_forest(text)
        assert bdd2.count_nodes(roots["f"], roots["g"]) == len(nodes)
        assert bdd.count_nodes(f, g) == len(nodes)

    def test_bad_format_rejected(self):
        with pytest.raises(BDDError):
            load_forest('{"format": "other"}')

    def test_non_topological_rejected(self):
        doc = {
            "format": "repro-bdd-forest",
            "version": 1,
            "variables": [{"name": "x", "kind": "input"}],
            "nodes": [[0, 5, 1]],
            "roots": {"f": 2},
        }
        with pytest.raises(BDDError):
            load_forest(json.dumps(doc))


class TestCharFunctionRoundtrip:
    def test_roundtrip_preserves_everything(self):
        spec = table1_spec()
        cf = CharFunction.from_spec(spec)
        reduced, _ = algorithm_3_3(cf)
        text = dump_charfunction(reduced)
        back = load_charfunction(text)
        assert back.name == reduced.name
        assert back.bdd.order() == reduced.bdd.order()
        assert width_profile(back.bdd, back.root) == width_profile(
            reduced.bdd, reduced.root
        )
        assert max_width(back.bdd, back.root) == 4
        for m, values in spec.care.items():
            got = back.sample_output(m)
            for g, want in zip(got, values):
                if want is not None:
                    assert g == want

    def test_precedence_survives(self):
        cf = CharFunction.from_spec(table1_spec())
        back = load_charfunction(dump_charfunction(cf))
        names = {
            (back.bdd.name_of(a), back.bdd.name_of(b))
            for a, b in back.precedence_constraints()
        }
        orig = {
            (cf.bdd.name_of(a), cf.bdd.name_of(b))
            for a, b in cf.precedence_constraints()
        }
        assert names == orig

    def test_plain_forest_rejected(self):
        bdd = BDD()
        bdd.add_var("x")
        text = dump_forest(bdd, {"f": 1})
        with pytest.raises(BDDError):
            load_charfunction(text)
