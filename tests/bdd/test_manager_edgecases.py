"""Edge-case and stress tests for the BDD manager."""

import random

import pytest

from repro.bdd import BDD, FALSE, TRUE, from_sorted_minterms
from repro.errors import VariableError


class TestDeepStructures:
    def test_300_variable_chain(self):
        """Recursive algorithms must handle chains far beyond the CF sizes."""
        n = 300
        bdd = BDD()
        vids = bdd.add_vars([f"x{i}" for i in range(n)])
        f = TRUE
        for v in reversed(vids):
            f = bdd.mk(v, FALSE, f)  # conjunction chain
        assert bdd.count_nodes(f) == n
        # Operations walk the whole chain.
        g = bdd.apply_and(f, f)
        assert g == f
        assert bdd.apply_not(bdd.apply_not(f)) == f
        assert bdd.sat_count(f, vids=vids) == 1
        asg = {v: 1 for v in vids}
        assert bdd.evaluate(f, asg) == 1
        asg[vids[150]] = 0
        assert bdd.evaluate(f, asg) == 0

    def test_wide_sparse_function(self):
        bdd = BDD()
        vids = bdd.add_vars([f"x{i}" for i in range(64)])
        rng = random.Random(1)
        minterms = sorted({rng.getrandbits(64) for _ in range(500)})
        f = from_sorted_minterms(bdd, vids, minterms)
        assert bdd.sat_count(f, vids=vids) == len(minterms)
        for m in minterms[:20]:
            asg = {v: (m >> (63 - i)) & 1 for i, v in enumerate(vids)}
            assert bdd.evaluate(f, asg) == 1


class TestCacheCorrectness:
    def test_results_stable_across_cache_clear(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b", "c", "d"])
        rng = random.Random(2)
        fns = []
        for _ in range(10):
            minterms = sorted(rng.sample(range(16), rng.randint(1, 15)))
            fns.append(from_sorted_minterms(bdd, vids, minterms))
        pairs = [(f, g) for f in fns for g in fns]
        before = [bdd.apply_and(f, g) for f, g in pairs]
        bdd.clear_cache()
        after = [bdd.apply_and(f, g) for f, g in pairs]
        assert before == after

    def test_collect_then_rebuild_same_ids_semantics(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b"])
        f = bdd.apply_xor(bdd.var(vids[0]), bdd.var(vids[1]))
        truth = [bdd.evaluate(f, {vids[0]: a, vids[1]: b}) for a in (0, 1) for b in (0, 1)]
        bdd.collect([f])
        # f survives the sweep untouched.
        assert truth == [
            bdd.evaluate(f, {vids[0]: a, vids[1]: b}) for a in (0, 1) for b in (0, 1)
        ]


class TestGroupsAndQuantifiers:
    def test_empty_group(self):
        bdd = BDD()
        v = bdd.add_var("x")
        gid = bdd.var_group([])
        f = bdd.var(v)
        assert bdd.exists(f, gid) == f
        assert bdd.forall(f, gid) == f

    def test_quantify_all_vars(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b"])
        f = bdd.apply_and(bdd.var(vids[0]), bdd.var(vids[1]))
        gid = bdd.var_group(vids)
        assert bdd.exists(f, gid) == TRUE
        assert bdd.forall(f, gid) == FALSE

    def test_nested_quantification(self):
        bdd = BDD()
        a, b, c = bdd.add_vars(["a", "b", "c"])
        f = bdd.apply_or(
            bdd.apply_and(bdd.var(a), bdd.var(b)),
            bdd.apply_and(bdd.nvar(a), bdd.var(c)),
        )
        g1 = bdd.exists(bdd.forall(f, bdd.var_group([b])), bdd.var_group([a]))
        # forall b: (a&b | ~a&c) == (a ? 0|... ) — cross-check by enumeration
        want = FALSE
        for av in (0, 1):
            sub = bdd.restrict(f, {a: av})
            wa = bdd.forall(sub, bdd.var_group([b]))
            want = bdd.apply_or(want, wa)
        assert g1 == want


class TestMisuse:
    def test_unknown_variable_in_assignment(self):
        bdd = BDD()
        v = bdd.add_var("x")
        with pytest.raises(VariableError):
            bdd.evaluate(bdd.var(v), {999: 1})

    def test_restrict_with_truthy_values(self):
        bdd = BDD()
        v = bdd.add_var("x")
        f = bdd.var(v)
        # restrict accepts any truthy/falsy bit value
        assert bdd.restrict(f, {v: True}) == TRUE
        assert bdd.restrict(f, {v: 0}) == FALSE

    def test_var_by_bad_name(self):
        bdd = BDD()
        with pytest.raises(VariableError):
            bdd.var("missing")
