"""Unit tests for cross-manager transfer."""

import pytest

from repro.bdd import BDD, from_truth_table
from repro.bdd.transfer import transfer
from repro.errors import VariableError

from tests.conftest import brute_force_truth


class TestTransfer:
    def test_roundtrip_semantics(self):
        src = BDD()
        svids = src.add_vars(["a", "b", "c"])
        table = [0, 1, 1, 1, 0, 0, 1, 0]
        f = from_truth_table(src, svids, table)

        dst = BDD()
        dvids = dst.add_vars(["a", "b", "c"])
        (g,) = transfer(src, dst, [f], dict(zip(svids, dvids)))
        assert brute_force_truth(dst, g, dvids) == table

    def test_transfer_into_interleaved_order(self):
        src = BDD()
        svids = src.add_vars(["a", "b"])
        f = src.apply_and(src.var(svids[0]), src.var(svids[1]))

        dst = BDD()
        dst.add_var("pad0")
        da = dst.add_var("a")
        dst.add_var("pad1")
        db = dst.add_var("b")
        (g,) = transfer(src, dst, [f], {svids[0]: da, svids[1]: db})
        assert dst.evaluate(g, {da: 1, db: 1, dst.vid("pad0"): 0, dst.vid("pad1"): 0}) == 1

    def test_terminals_map_to_terminals(self):
        src, dst = BDD(), BDD()
        assert transfer(src, dst, [0, 1], {}) == [0, 1]

    def test_missing_map_entry(self):
        src = BDD()
        (a,) = src.add_vars(["a"])
        dst = BDD()
        with pytest.raises(VariableError):
            transfer(src, dst, [src.var(a)], {})

    def test_order_mismatch_uses_ite_path(self):
        src = BDD()
        svids = src.add_vars(["a", "b", "c"])
        table = [0, 1, 1, 0, 1, 1, 0, 0]
        f = from_truth_table(src, svids, table)
        dst = BDD()
        dc, db, da = dst.add_vars(["c", "b", "a"])  # reversed order
        (g,) = transfer(src, dst, [f], dict(zip(svids, (da, db, dc))))
        # Same function, re-normalized to the destination order.
        for m in range(8):
            asg = {da: (m >> 2) & 1, db: (m >> 1) & 1, dc: m & 1}
            assert dst.evaluate(g, asg) == table[m]
        dst.check_invariants([g])

    def test_sharing_preserved(self):
        src = BDD()
        svids = src.add_vars(["a", "b", "c"])
        f = src.apply_xor(src.var(svids[0]), src.var(svids[2]))
        g = src.apply_xor(src.var(svids[1]), src.var(svids[2]))
        dst = BDD()
        dvids = dst.add_vars(["a", "b", "c"])
        nf, ng = transfer(src, dst, [f, g], dict(zip(svids, dvids)))
        # Shared sub-structure maps to shared nodes in the destination.
        assert dst.count_nodes(nf, ng) == src.count_nodes(f, g)
