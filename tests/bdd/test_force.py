"""Tests for the FORCE ordering heuristic."""

from repro.bdd.force import force_input_order, force_order
from repro.benchfns import decimal_adder_benchmark
from repro.cf import CharFunction
from repro.isf import MultiOutputISF, table1_spec


class TestForceOrder:
    def test_no_edges_keeps_order(self):
        assert force_order(4, []) == [0, 1, 2, 3]

    def test_permutation_always(self):
        order = force_order(6, [[0, 5], [1, 4], [2, 3]])
        assert sorted(order) == list(range(6))

    def test_groups_connected_vertices(self):
        # Two disjoint cliques maximally interleaved initially: FORCE
        # must separate them.
        edges = [[0, 2, 4], [1, 3, 5]]
        order = force_order(6, edges, initial=[0, 1, 2, 3, 4, 5])
        positions = {v: i for i, v in enumerate(order)}
        span_a = max(positions[v] for v in edges[0]) - min(
            positions[v] for v in edges[0]
        )
        span_b = max(positions[v] for v in edges[1]) - min(
            positions[v] for v in edges[1]
        )
        assert span_a == 2 and span_b == 2

    def test_deterministic(self):
        edges = [[0, 3], [1, 2], [0, 2]]
        assert force_order(4, edges) == force_order(4, edges)

    def test_never_worse_span_than_initial(self):
        import random

        rng = random.Random(5)
        for _ in range(10):
            n = rng.randint(3, 10)
            edges = [
                rng.sample(range(n), rng.randint(2, n))
                for _ in range(rng.randint(1, 6))
            ]

            def cost(order):
                pos = {v: i for i, v in enumerate(order)}
                return sum(
                    max(pos[v] for v in e) - min(pos[v] for v in e)
                    for e in edges
                )

            assert cost(force_order(n, edges)) <= cost(list(range(n)))


class TestForceInputOrder:
    def test_adder_interleaves_operand_digits(self):
        """FORCE groups a_i with b_i (they share the stage-i supports)."""
        isf = decimal_adder_benchmark(3).build()
        order = force_input_order(isf)
        names = [isf.bdd.name_of(v) for v in order]
        # Every a-digit block must sit adjacent to its b-digit block:
        # positions of a{i}_* and b{i}_* span at most 8 slots.
        for i in range(3):
            span = [
                j for j, n in enumerate(names) if n.startswith((f"a{i}_", f"b{i}_"))
            ]
            assert max(span) - min(span) <= 7, names

    def test_cf_from_force_order_is_valid(self):
        isf = MultiOutputISF.from_spec(table1_spec())
        order = force_input_order(isf)
        cf = CharFunction.from_isf(isf, input_order=order)
        assert cf.is_wellformed()
        spec = table1_spec()
        for m, values in spec.care.items():
            got = cf.sample_output(m)
            for g, want in zip(got, values):
                if want is not None:
                    assert g == want
