"""Unit tests for symbolic bit-vector arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, FALSE, TRUE
from repro.bdd.vector import (
    add_to_width,
    const_vector,
    evaluate_vector,
    full_add,
    mux_vector,
    ripple_add,
    vector_eq_const,
    zero_extend,
)


def input_vector(bdd, prefix, width):
    vids = bdd.add_vars([f"{prefix}{i}" for i in range(width)])
    return vids, [bdd.var(v) for v in vids]


class TestConstAndExtend:
    def test_const_vector(self):
        bdd = BDD()
        vec = const_vector(bdd, 5, 4)
        assert vec == [FALSE, TRUE, FALSE, TRUE]

    def test_zero_extend(self):
        bdd = BDD()
        vec = zero_extend([TRUE], 3)
        assert vec == [FALSE, FALSE, TRUE]
        with pytest.raises(ValueError):
            zero_extend([TRUE, TRUE], 1)


class TestFullAdd:
    def test_exhaustive(self):
        bdd = BDD()
        a, b, c = bdd.add_vars(["a", "b", "c"])
        s, cout = full_add(bdd, bdd.var(a), bdd.var(b), bdd.var(c))
        for x in range(8):
            asg = {a: (x >> 2) & 1, b: (x >> 1) & 1, c: x & 1}
            total = asg[a] + asg[b] + asg[c]
            assert bdd.evaluate(s, asg) == total & 1
            assert bdd.evaluate(cout, asg) == total >> 1


class TestRippleAdd:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_matches_integer_addition(self, x, y, cin):
        bdd = BDD()
        xv, xs = input_vector(bdd, "x", 4)
        yv, ys = input_vector(bdd, "y", 4)
        out, carry = ripple_add(bdd, xs, ys, TRUE if cin else FALSE)
        asg = {v: (x >> (3 - i)) & 1 for i, v in enumerate(xv)}
        asg.update({v: (y >> (3 - i)) & 1 for i, v in enumerate(yv)})
        got = evaluate_vector(bdd, out, asg)
        got |= bdd.evaluate(carry, asg) << 4
        assert got == x + y + cin

    def test_width_mismatch(self):
        bdd = BDD()
        with pytest.raises(ValueError):
            ripple_add(bdd, [TRUE], [TRUE, TRUE])


class TestAddToWidth:
    def test_no_overflow(self):
        bdd = BDD()
        a = const_vector(bdd, 3, 2)
        b = const_vector(bdd, 2, 2)
        out = add_to_width(bdd, a, b, 3)
        assert evaluate_vector(bdd, out, {}) == 5

    def test_overflow_detected(self):
        bdd = BDD()
        a = const_vector(bdd, 3, 2)
        with pytest.raises(ValueError):
            add_to_width(bdd, a, a, 2)


class TestMuxAndEq:
    def test_mux_vector(self):
        bdd = BDD()
        s = bdd.add_var("s")
        ones = const_vector(bdd, 3, 2)
        zeros = const_vector(bdd, 1, 2)
        out = mux_vector(bdd, bdd.var(s), ones, zeros)
        assert evaluate_vector(bdd, out, {s: 1}) == 3
        assert evaluate_vector(bdd, out, {s: 0}) == 1
        with pytest.raises(ValueError):
            mux_vector(bdd, bdd.var(s), ones, [TRUE])

    def test_vector_eq_const(self):
        bdd = BDD()
        vids, vec = input_vector(bdd, "x", 3)
        f = vector_eq_const(bdd, vec, 5)
        for v in range(8):
            asg = {vid: (v >> (2 - i)) & 1 for i, vid in enumerate(vids)}
            assert bdd.evaluate(f, asg) == (1 if v == 5 else 0)
