"""Tests for generalized cofactors (constrain / restrict)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, FALSE, TRUE, from_truth_table
from repro.bdd.gcf import constrain, restrict_gc
from repro.errors import BDDError

from tests.conftest import brute_force_truth

N = 4
TABLE = st.lists(st.integers(0, 1), min_size=1 << N, max_size=1 << N)


def build(table_f, table_c):
    bdd = BDD()
    vids = bdd.add_vars([f"x{i}" for i in range(N)])
    f = from_truth_table(bdd, vids, table_f)
    c = from_truth_table(bdd, vids, table_c)
    return bdd, vids, f, c


class TestConstrain:
    def test_empty_care_rejected(self):
        bdd = BDD()
        with pytest.raises(BDDError):
            constrain(bdd, TRUE, FALSE)

    def test_full_care_is_identity(self):
        bdd, vids, f, _ = build([0, 1] * 8, [1] * 16)
        assert constrain(bdd, f, TRUE) == f

    @settings(max_examples=50, deadline=None)
    @given(TABLE, TABLE)
    def test_agrees_on_care_set(self, tf, tc):
        if not any(tc):
            tc = list(tc)
            tc[0] = 1
        bdd, vids, f, c = build(tf, tc)
        g = constrain(bdd, f, c)
        truth_f = brute_force_truth(bdd, f, vids)
        truth_g = brute_force_truth(bdd, g, vids)
        for m in range(1 << N):
            if tc[m]:
                assert truth_g[m] == truth_f[m], m

    @settings(max_examples=30, deadline=None)
    @given(TABLE)
    def test_constrain_by_self(self, tf):
        if not any(tf):
            return
        bdd, vids, f, _ = build(tf, tf)
        assert constrain(bdd, f, f) == TRUE


class TestRestrict:
    def test_empty_care_rejected(self):
        bdd = BDD()
        with pytest.raises(BDDError):
            restrict_gc(bdd, TRUE, FALSE)

    @settings(max_examples=50, deadline=None)
    @given(TABLE, TABLE)
    def test_agrees_on_care_set(self, tf, tc):
        if not any(tc):
            tc = list(tc)
            tc[-1] = 1
        bdd, vids, f, c = build(tf, tc)
        g = restrict_gc(bdd, f, c)
        truth_f = brute_force_truth(bdd, f, vids)
        truth_g = brute_force_truth(bdd, g, vids)
        for m in range(1 << N):
            if tc[m]:
                assert truth_g[m] == truth_f[m], m

    @settings(max_examples=30, deadline=None)
    @given(TABLE, TABLE)
    def test_support_never_grows(self, tf, tc):
        """Restrict's defining advantage over constrain."""
        if not any(tc):
            return
        bdd, vids, f, c = build(tf, tc)
        g = restrict_gc(bdd, f, c)
        assert bdd.support(g) <= bdd.support(f)

    def test_often_smaller_than_f(self):
        # The classic use: a function specified only on a narrow care set
        # collapses to something tiny.
        bdd = BDD()
        vids = bdd.add_vars([f"x{i}" for i in range(6)])
        table_f = [1 if bin(m).count("1") % 2 else 0 for m in range(64)]
        f = from_truth_table(bdd, vids, table_f)
        care = from_truth_table(bdd, vids, [1 if m < 2 else 0 for m in range(64)])
        g = restrict_gc(bdd, f, care)
        assert bdd.count_nodes(g) < bdd.count_nodes(f)
