"""Stateful property test of the BDD manager.

A hypothesis rule machine interleaves Boolean operations, cofactoring,
reordering and garbage collection while shadowing every live function
with its dense truth table; any divergence between the BDD and the
shadow model fails the run.
"""

import random

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
import hypothesis.strategies as st

from repro.bdd import BDD, from_truth_table
from repro.bdd.reorder import SiftSession, sift

N_VARS = 4
SIZE = 1 << N_VARS


class BDDMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.bdd = BDD()
        self.vids = self.bdd.add_vars([f"x{i}" for i in range(N_VARS)])
        self.rng = random.Random(1234)
        # node -> shadow truth table (tuple of SIZE bits)
        self.shadow: dict[int, tuple[int, ...]] = {
            0: tuple([0] * SIZE),
            1: tuple([1] * SIZE),
        }

    def _truth(self, node: int) -> tuple[int, ...]:
        out = []
        for m in range(SIZE):
            asg = {
                v: (m >> (N_VARS - 1 - i)) & 1 for i, v in enumerate(self.vids)
            }
            out.append(self.bdd.evaluate(node, asg))
        return tuple(out)

    def _register(self, node: int, table: tuple[int, ...]):
        self.shadow[node] = table

    def _pick(self) -> int:
        return self.rng.choice(list(self.shadow))

    @rule(bits=st.integers(0, (1 << SIZE) - 1))
    def new_function(self, bits):
        table = tuple((bits >> i) & 1 for i in range(SIZE))
        # The variable order may have changed (swaps/sifting), so remap
        # positional minterms into the current level order before the
        # sparse build.
        by_level = sorted(self.vids, key=self.bdd.level_of_vid)
        position = {v: i for i, v in enumerate(by_level)}
        onset = []
        for m in range(SIZE):
            if table[m]:
                mapped = 0
                for i, v in enumerate(self.vids):
                    bit = (m >> (N_VARS - 1 - i)) & 1
                    mapped |= bit << (N_VARS - 1 - position[v])
                onset.append(mapped)
        from repro.bdd import from_sorted_minterms

        node = from_sorted_minterms(self.bdd, by_level, sorted(onset))
        self._register(node, table)

    @rule()
    def conjoin(self):
        f, g = self._pick(), self._pick()
        h = self.bdd.apply_and(f, g)
        self._register(
            h, tuple(a & b for a, b in zip(self.shadow[f], self.shadow[g]))
        )

    @rule()
    def disjoin(self):
        f, g = self._pick(), self._pick()
        h = self.bdd.apply_or(f, g)
        self._register(
            h, tuple(a | b for a, b in zip(self.shadow[f], self.shadow[g]))
        )

    @rule()
    def negate(self):
        f = self._pick()
        h = self.bdd.apply_not(f)
        self._register(h, tuple(1 - a for a in self.shadow[f]))

    @rule(var=st.integers(0, N_VARS - 1), value=st.integers(0, 1))
    def cofactor(self, var, value):
        f = self._pick()
        h = self.bdd.cofactor(f, self.vids[var], value)
        table = []
        for m in range(SIZE):
            forced = m & ~(1 << (N_VARS - 1 - var))
            if value:
                forced |= 1 << (N_VARS - 1 - var)
            table.append(self.shadow[f][forced])
        self._register(h, tuple(table))

    @rule(level=st.integers(0, N_VARS - 2))
    def swap_levels(self, level):
        roots = [n for n in self.shadow if n > 1]
        session = SiftSession(self.bdd, roots)
        session.swap(level)

    @rule()
    def run_sift(self):
        roots = [n for n in self.shadow if n > 1]
        if roots:
            sift(self.bdd, roots)

    @rule()
    def collect_garbage(self):
        # Forget a random non-terminal function, then sweep.
        nodes = [n for n in self.shadow if n > 1]
        if len(nodes) > 2:
            victim = self.rng.choice(nodes)
            del self.shadow[victim]
        self.bdd.collect([n for n in self.shadow if n > 1])
        # References into freed space are gone from the shadow, so all
        # remaining entries must still be valid.

    @invariant()
    def shadows_match(self):
        if not hasattr(self, "bdd"):
            return
        for node, table in self.shadow.items():
            assert self._truth(node) == table

    @invariant()
    def manager_invariants(self):
        if not hasattr(self, "bdd"):
            return
        self.bdd.check_invariants([n for n in self.shadow if n > 1])


TestBDDMachine = BDDMachine.TestCase
TestBDDMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
