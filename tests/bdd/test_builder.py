"""Unit tests for BDD construction from tabular data."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import (
    BDD,
    FALSE,
    TRUE,
    from_cube,
    from_cubes,
    from_sorted_minterms,
    from_truth_table,
    word_geq_const,
)
from repro.errors import BDDError

from tests.conftest import brute_force_truth


def make_bdd(n):
    bdd = BDD()
    vids = bdd.add_vars([f"x{i}" for i in range(n)])
    return bdd, vids


class TestFromCube:
    def test_single_literal(self):
        bdd, vids = make_bdd(2)
        f = from_cube(bdd, {vids[0]: 1})
        assert f == bdd.var(vids[0])

    def test_product(self):
        bdd, vids = make_bdd(3)
        f = from_cube(bdd, {vids[0]: 1, vids[2]: 0})
        assert brute_force_truth(bdd, f, vids) == [0, 0, 0, 0, 1, 0, 1, 0]

    def test_empty_cube_is_true(self):
        bdd, _ = make_bdd(1)
        assert from_cube(bdd, {}) == TRUE

    def test_cubes_union(self):
        bdd, vids = make_bdd(2)
        f = from_cubes(bdd, [{vids[0]: 0, vids[1]: 0}, {vids[0]: 1, vids[1]: 1}])
        assert brute_force_truth(bdd, f, vids) == [1, 0, 0, 1]


class TestFromTruthTable:
    def test_exact(self):
        bdd, vids = make_bdd(3)
        table = [0, 1, 1, 0, 1, 0, 0, 1]
        f = from_truth_table(bdd, vids, table)
        assert brute_force_truth(bdd, f, vids) == table

    def test_constant_tables(self):
        bdd, vids = make_bdd(2)
        assert from_truth_table(bdd, vids, [0, 0, 0, 0]) == FALSE
        assert from_truth_table(bdd, vids, [1, 1, 1, 1]) == TRUE

    def test_wrong_size_rejected(self):
        bdd, vids = make_bdd(2)
        with pytest.raises(BDDError):
            from_truth_table(bdd, vids, [0, 1])

    def test_vids_must_be_in_level_order(self):
        bdd, vids = make_bdd(2)
        with pytest.raises(BDDError):
            from_truth_table(bdd, list(reversed(vids)), [0, 1, 1, 0])


class TestFromSortedMinterms:
    def test_matches_truth_table(self):
        bdd, vids = make_bdd(4)
        table = [1 if m % 3 == 0 else 0 for m in range(16)]
        minterms = [m for m in range(16) if table[m]]
        f = from_sorted_minterms(bdd, vids, minterms)
        g = from_truth_table(bdd, vids, table)
        assert f == g

    def test_empty_and_full(self):
        bdd, vids = make_bdd(3)
        assert from_sorted_minterms(bdd, vids, []) == FALSE
        assert from_sorted_minterms(bdd, vids, list(range(8))) == TRUE

    def test_out_of_range_rejected(self):
        bdd, vids = make_bdd(2)
        with pytest.raises(BDDError):
            from_sorted_minterms(bdd, vids, [4])

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 31), max_size=32))
    def test_random_sets(self, minterms):
        bdd, vids = make_bdd(5)
        f = from_sorted_minterms(bdd, vids, sorted(minterms))
        truth = brute_force_truth(bdd, f, vids)
        assert {m for m in range(32) if truth[m]} == minterms

    def test_sparse_40bit_domain(self):
        # The word-list construction path: few minterms, wide domain.
        bdd, vids = make_bdd(40)
        minterms = [3, 5_000_000_000, (1 << 40) - 1]
        f = from_sorted_minterms(bdd, vids, minterms)
        for m in minterms:
            asg = {v: (m >> (39 - i)) & 1 for i, v in enumerate(vids)}
            assert bdd.evaluate(f, asg) == 1
        assert bdd.sat_count(f, vids=vids) == 3


class TestWordGeqConst:
    def test_all_thresholds_width5(self):
        bdd, vids = make_bdd(5)
        for c in range(0, 33):
            f = word_geq_const(bdd, vids, c)
            truth = brute_force_truth(bdd, f, vids)
            assert truth == [1 if v >= c else 0 for v in range(32)], c

    def test_degenerate_bounds(self):
        bdd, vids = make_bdd(3)
        assert word_geq_const(bdd, vids, 0) == TRUE
        assert word_geq_const(bdd, vids, 8) == FALSE
        assert word_geq_const(bdd, vids, -5) == TRUE

    def test_radix_dc_semantics(self):
        # "digit code >= p" marks the unused codes of a radix-p digit.
        bdd, vids = make_bdd(4)
        f = word_geq_const(bdd, vids, 10)  # BCD digit
        truth = brute_force_truth(bdd, f, vids)
        assert sum(truth) == 6  # codes 10..15
