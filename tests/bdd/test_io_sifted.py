"""Round-trips of CF BDDs under sifted (non-identity) variable orders.

These are exactly the payloads the parallel workers ship back to the
parent: a BDD_for_CF whose order was changed by sifting, with output
variables interleaved among the inputs (Definition 2.4), serialized
with ``repro.bdd.io`` and re-imported by name with
``repro.bdd.transfer.transfer_by_name``.
"""

import pytest

from repro.bdd import set_order, transfer_by_name
from repro.bdd.io import (
    charfunction_payload,
    dump_charfunction,
    load_charfunction,
    load_charfunction_payload,
)
from repro.bdd.manager import BDD
from repro.cf import CharFunction, max_width, width_profile
from repro.errors import VariableError
from repro.isf import table1_spec
from repro.reduce import algorithm_3_3, reduce_support


@pytest.fixture()
def sifted_cf():
    """Table 1 CF under a deliberately non-identity order."""
    cf = CharFunction.from_spec(table1_spec())
    cf.sift(cost="widthsum")
    # Sifting may or may not move variables; force a visible permutation
    # that still respects Def. 2.4 (each y_i below its supports).
    names = cf.bdd.order()
    inputs = [n for n in names if cf.bdd.kind_of(cf.bdd.vid(n)) == "input"]
    reordered = [inputs[1], inputs[0], *names[2:]] if names[:2] == inputs[:2] else names
    set_order(cf.bdd, [cf.root], reordered)
    return cf


class TestSiftedRoundtrip:
    def test_order_and_kinds_survive(self, sifted_cf):
        back = load_charfunction(dump_charfunction(sifted_cf))
        assert back.bdd.order() == sifted_cf.bdd.order()
        for vid in back.output_vids:
            assert back.bdd.kind_of(vid) == "output"
        for vid in back.input_vids:
            assert back.bdd.kind_of(vid) == "input"

    def test_structure_survives(self, sifted_cf):
        back = load_charfunction(dump_charfunction(sifted_cf))
        assert width_profile(back.bdd, back.root) == width_profile(
            sifted_cf.bdd, sifted_cf.root
        )
        assert back.num_nodes() == sifted_cf.num_nodes()

    def test_semantics_survive(self, sifted_cf):
        back = load_charfunction(dump_charfunction(sifted_cf))
        for m in range(1 << len(sifted_cf.input_vids)):
            assert back.output_pattern(m) == sifted_cf.output_pattern(m)

    def test_output_supports_survive(self, sifted_cf):
        back = load_charfunction(dump_charfunction(sifted_cf))
        names = {
            back.bdd.name_of(y): {back.bdd.name_of(x) for x in xs}
            for y, xs in back.output_supports.items()
        }
        want = {
            sifted_cf.bdd.name_of(y): {sifted_cf.bdd.name_of(x) for x in xs}
            for y, xs in sifted_cf.output_supports.items()
        }
        assert names == want

    def test_payload_matches_text_roundtrip(self, sifted_cf):
        by_payload = load_charfunction_payload(charfunction_payload(sifted_cf))
        by_text = load_charfunction(dump_charfunction(sifted_cf))
        assert by_payload.bdd.order() == by_text.bdd.order()
        assert by_payload.num_nodes() == by_text.num_nodes()

    def test_reduced_cf_roundtrip(self, sifted_cf):
        reduced, _removed = reduce_support(sifted_cf)
        reduced, _stats = algorithm_3_3(reduced)
        back = load_charfunction(dump_charfunction(reduced))
        assert max_width(back.bdd, back.root) == max_width(reduced.bdd, reduced.root)
        assert back.num_nodes() == reduced.num_nodes()


class TestTransferByName:
    def test_roundtrip_into_original_manager(self, sifted_cf):
        back = load_charfunction(dump_charfunction(sifted_cf))
        (root,) = transfer_by_name(back.bdd, sifted_cf.bdd, [back.root])
        assert root == sifted_cf.root

    def test_into_manager_with_different_order(self, sifted_cf):
        dst = BDD()
        # Same variables, reversed order: forces the ITE re-normalization.
        for name in reversed(sifted_cf.bdd.order()):
            dst.add_var(
                name, kind=sifted_cf.bdd.kind_of(sifted_cf.bdd.vid(name))
            )
        (root,) = transfer_by_name(sifted_cf.bdd, dst, [sifted_cf.root])
        # Semantics must match on every full assignment.
        all_vids = [
            *sifted_cf.input_vids,
            *sifted_cf.output_vids,
        ]
        n = len(all_vids)
        for m in range(1 << n):
            bits = [(m >> (n - 1 - i)) & 1 for i in range(n)]
            src_val = sifted_cf.bdd.evaluate(
                sifted_cf.root, dict(zip(all_vids, bits))
            )
            dst_val = dst.evaluate(
                root,
                {
                    dst.vid(sifted_cf.bdd.name_of(v)): b
                    for v, b in zip(all_vids, bits)
                },
            )
            assert src_val == dst_val

    def test_missing_vars_added_with_kinds(self, sifted_cf):
        dst = BDD()
        (root,) = transfer_by_name(sifted_cf.bdd, dst, [sifted_cf.root])
        assert root != 0
        for vid in sifted_cf.bdd.support(sifted_cf.root):
            name = sifted_cf.bdd.name_of(vid)
            assert dst.kind_of(dst.vid(name)) == sifted_cf.bdd.kind_of(vid)

    def test_add_missing_false_raises(self, sifted_cf):
        with pytest.raises(VariableError, match="lacks variables"):
            transfer_by_name(
                sifted_cf.bdd, BDD(), [sifted_cf.root], add_missing=False
            )

    def test_terminal_roots(self):
        src, dst = BDD(), BDD()
        src.add_var("x")
        assert transfer_by_name(src, dst, [0, 1]) == [0, 1]
