"""Tests for the cooperative resource governor (``repro.bdd.governor``).

The load-bearing property is not just that budgets raise — it is that
the manager is left *consistent and usable* after an abort: partial
results are valid nodes, invariants hold, and subsequent operations
compute the same functions a fresh ungoverned manager computes.
"""

import itertools

import pytest

from repro.bdd import BDD, Budget, sift
from repro.bdd import governor
from repro.errors import BudgetError, DeadlineError, ResourceLimitError

N_VARS = 14


def _build_stress(bdd, vids):
    """A function family that costs plenty of kernel steps to build."""
    f = bdd.var(vids[0])
    for v in vids[1:]:
        f = bdd.apply_xor(f, bdd.var(v))
    g = bdd.TRUE
    for a, b in zip(vids, vids[1:]):
        g = bdd.apply_and(g, bdd.apply_or(bdd.var(a), bdd.var(b)))
    return bdd.apply_and(f, g)


@pytest.fixture
def bdd():
    b = BDD()
    b.add_vars([f"x{i}" for i in range(N_VARS)])
    return b


class TestBudgetBasics:
    def test_unlimited_budget_never_raises(self, bdd):
        with Budget():
            _build_stress(bdd, list(range(N_VARS)))

    def test_inactive_outside_with(self, bdd):
        budget = Budget(max_steps=1)
        assert governor.active() is None
        with budget:
            assert governor.active() is budget
        assert governor.active() is None
        _build_stress(bdd, list(range(N_VARS)))  # no budget, no raise

    def test_step_budget_raises_resource_limit(self, bdd):
        with pytest.raises(ResourceLimitError) as excinfo:
            with Budget(max_steps=100):
                _build_stress(bdd, list(range(N_VARS)))
        assert excinfo.value.budget is not None

    def test_node_budget_raises(self, bdd):
        with pytest.raises(ResourceLimitError, match="node budget"):
            with Budget(max_nodes=30):
                _build_stress(bdd, list(range(N_VARS)))

    def test_deadline_raises_deadline_error(self, bdd):
        with pytest.raises(DeadlineError):
            with Budget(deadline_s=0.0):
                _build_stress(bdd, list(range(N_VARS)))

    def test_budget_errors_are_budget_error(self, bdd):
        with pytest.raises(BudgetError):
            with Budget(max_steps=1):
                _build_stress(bdd, list(range(N_VARS)))

    def test_error_carries_owning_budget(self, bdd):
        budget = Budget(max_steps=50)
        try:
            with budget:
                _build_stress(bdd, list(range(N_VARS)))
        except ResourceLimitError as exc:
            assert exc.budget is budget
        else:
            pytest.fail("step budget did not trip")

    def test_nested_outermost_checked_first(self, bdd):
        outer = Budget(max_steps=10)
        inner = Budget(max_steps=10)
        try:
            with outer, inner:
                _build_stress(bdd, list(range(N_VARS)))
        except ResourceLimitError as exc:
            assert exc.budget is outer
        else:
            pytest.fail("budgets did not trip")


class TestManagerUsableAfterAbort:
    def test_apply_abort_leaves_manager_consistent(self, bdd):
        with pytest.raises(ResourceLimitError):
            with Budget(max_steps=200):
                _build_stress(bdd, list(range(N_VARS)))
        bdd.check_invariants()
        # Differential check against a fresh, ungoverned manager: the
        # same operations must produce the same Boolean functions.
        ref = BDD()
        ref.add_vars([f"x{i}" for i in range(N_VARS)])
        f = _build_stress(bdd, list(range(6)))
        g = _build_stress(ref, list(range(6)))
        for bits in itertools.product((0, 1), repeat=6):
            assign = {i: bits[i] for i in range(6)}
            assign.update({i: 0 for i in range(6, N_VARS)})
            assert bdd.evaluate(f, assign) == ref.evaluate(g, assign)

    def test_sift_abort_leaves_manager_consistent(self, bdd):
        roots = [_build_stress(bdd, list(range(N_VARS)))]
        before = [
            bdd.evaluate(roots[0], {i: (i * 7) % 2 for i in range(N_VARS)})
            for _ in range(1)
        ]
        with pytest.raises(ResourceLimitError):
            with Budget(max_steps=1):
                sift(bdd, roots)
        bdd.check_invariants()
        # The root still denotes the same function (reordering is
        # in-place and semantics-preserving, aborted or not).
        after = bdd.evaluate(roots[0], {i: (i * 7) % 2 for i in range(N_VARS)})
        assert after == before[0]
        # And the manager still works: finish the sift ungoverned.
        sift(bdd, roots)
        bdd.check_invariants()

    def test_sift_deadline_abort(self, bdd):
        roots = [_build_stress(bdd, list(range(N_VARS)))]
        with pytest.raises(DeadlineError):
            with Budget(deadline_s=0.0):
                sift(bdd, roots)
        bdd.check_invariants()


class TestCheckpointSemantics:
    def test_checkpoint_charges_all_active_budgets(self):
        a = Budget(max_steps=10_000)
        b = Budget(max_steps=10_000)
        with a, b:
            governor.checkpoint(None, 64)
        assert a.steps == 64
        assert b.steps == 64

    def test_note_degraded_records_on_active_budgets(self):
        budget = Budget()
        with budget:
            governor.note_degraded("sift aborted")
        assert budget.degradations == ["sift aborted"]

    def test_note_degraded_noop_without_budget(self):
        governor.note_degraded("nobody listening")  # must not raise

    def test_overshoot_is_bounded_by_check_interval(self, bdd):
        budget = Budget(max_steps=10)
        with pytest.raises(ResourceLimitError):
            with budget:
                _build_stress(bdd, list(range(N_VARS)))
        # Charged in CHECK_INTERVAL quanta: one interval past the limit
        # at most (this is a governor, not a hard rlimit).
        assert budget.steps <= 10 + 2 * governor.CHECK_INTERVAL
