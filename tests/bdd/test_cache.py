"""Correctness of the tiered operation caches under reorder and GC.

The engine never clears its computed tables wholesale: an adjacent
swap bumps the reorder epoch (node ids keep denoting the same
function, so kernel-tier entries survive), and freeing a node bumps
its generation counter so any cache entry referencing the recycled id
reads as stale.  These tests pin exactly those invalidation rules —
the regressions they guard against are silent wrong results, not
crashes — plus the differential property that the iterative kernel
computes the same node ids as the recursive reference engine.
"""

from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, from_truth_table, set_order
from repro.bdd import reference

from tests.conftest import brute_force_truth

N_VARS = 4
TABLE = st.lists(st.integers(0, 1), min_size=1 << N_VARS, max_size=1 << N_VARS)


def build(table):
    bdd = BDD()
    vids = bdd.add_vars([f"x{i}" for i in range(N_VARS)])
    return bdd, vids, from_truth_table(bdd, vids, table)


class TestReorderInvalidation:
    def test_swap_does_not_clear_kernel_tiers(self):
        bdd = BDD()
        vids = bdd.add_vars([f"x{i}" for i in range(6)])
        f = from_truth_table(bdd, vids[:3], [0, 1, 1, 0, 1, 0, 0, 1])
        g = from_truth_table(bdd, vids[3:], [1, 0, 0, 1, 0, 1, 1, 0])
        h = bdd.apply_and(f, g)
        and_tier = bdd.cache_stats()["tiers"]["and"]
        assert and_tier["size"] > 0
        # Swapping two levels disjoint from the cached operands must
        # keep the entries (the seed engine cleared everything here).
        order = bdd.order()
        order[0], order[1] = order[1], order[0]
        set_order(bdd, [f, g, h], order)
        assert bdd.cache_stats()["tiers"]["and"]["size"] > 0
        hits_before = bdd.cache_stats()["tiers"]["and"]["hits"]
        assert bdd.apply_and(f, g) == h
        assert bdd.cache_stats()["tiers"]["and"]["hits"] == hits_before + 1

    @settings(max_examples=40, deadline=None)
    @given(TABLE, TABLE, st.permutations(list(range(N_VARS))))
    def test_results_correct_after_reorder(self, ta, tb, perm):
        # Populate the caches, reorder, and re-ask every op: answers
        # must match a fresh manager that never cached anything.
        bdd, vids, f = build(ta)
        g = from_truth_table(bdd, vids, tb)
        before = [
            bdd.apply_and(f, g),
            bdd.apply_or(f, g),
            bdd.apply_xor(f, g),
            bdd.apply_not(f),
        ]
        truths = [brute_force_truth(bdd, r, vids) for r in before]
        set_order(bdd, [f, g, *before], [f"x{i}" for i in perm])
        after = [
            bdd.apply_and(f, g),
            bdd.apply_or(f, g),
            bdd.apply_xor(f, g),
            bdd.apply_not(f),
        ]
        assert after == before  # ids still denote the same functions
        assert [brute_force_truth(bdd, r, vids) for r in after] == truths

    @settings(max_examples=25, deadline=None)
    @given(TABLE, TABLE)
    def test_order_sensitive_tiers_die_on_reorder(self, ta, tb):
        # Totality/compatibility answers depend on the variable order
        # via the quantification sweep; their tiers are epoch-tagged.
        from repro.isf.compat import compatible_columns, ordered_total

        bdd = BDD()
        x = bdd.add_vars(["x0", "x1"], kind="input")
        y = bdd.add_vars(["y0", "y1"], kind="output")
        vids = x + y
        f = from_truth_table(bdd, vids, ta)
        g = from_truth_table(bdd, vids, tb)
        tot_f = ordered_total(bdd, f)
        compat = compatible_columns(bdd, f, g)
        # Move the outputs above the inputs and re-ask: the memo must
        # not serve the old-order verdicts blindly.
        set_order(bdd, [f, g], ["y0", "y1", "x0", "x1"])
        truth_f = brute_force_truth(bdd, f, vids)
        truth_g = brute_force_truth(bdd, g, vids)
        assert ordered_total(bdd, f) == _tot_by_table(truth_f)
        assert compatible_columns(bdd, f, g) == _tot_by_table(
            [a & b for a, b in zip(truth_f, truth_g)]
        )
        # The pre-reorder answers were for the x-above-y order.
        assert tot_f == _forall_exists(truth_f)
        assert compat == _forall_exists([a & b for a, b in zip(truth_f, truth_g)])


def _forall_exists(table):
    # x0 x1 y0 y1 (MSB first): total iff every x-block has a 1.
    return all(any(table[x * 4 + y] for y in range(4)) for x in range(4))


def _tot_by_table(table):
    # After moving y0 y1 to the top the sweep order quantifies the
    # outputs first: ∃y ∀x under the new order's MSB-first layout
    # y0 y1 x0 x1 — i.e. some y-block is all-ones.
    return any(all(table[x * 4 + y] for x in range(4)) for y in range(4))


class TestCollectInvalidation:
    def test_recycled_ids_do_not_serve_stale_entries(self):
        bdd = BDD()
        vids = bdd.add_vars([f"x{i}" for i in range(N_VARS)])
        f = from_truth_table(bdd, vids, [0, 1] * 8)
        g = from_truth_table(bdd, vids, [0, 1, 1, 0] * 4)
        h = bdd.apply_and(f, g)
        truth_f = brute_force_truth(bdd, f, vids)
        # Sweep everything except f; g's and h's ids go back on the
        # free list and will be recycled by the next constructions.
        bdd.collect([f])
        # Build new functions until some recycle the freed ids, then
        # re-run the same op shapes: entries keyed on the old ids must
        # not answer for the new occupants.
        for seed in range(8):
            table = [(seed >> (i % 3)) & 1 for i in range(1 << N_VARS)]
            p = from_truth_table(bdd, vids, table)
            q = bdd.apply_and(f, p)
            assert brute_force_truth(bdd, q, vids) == [
                a & b for a, b in zip(truth_f, table)
            ]
        bdd.check_invariants([f])

    def test_collect_keeps_surviving_entries(self):
        bdd = BDD()
        vids = bdd.add_vars([f"x{i}" for i in range(N_VARS)])
        f = from_truth_table(bdd, vids, [0, 1] * 8)
        g = from_truth_table(bdd, vids, [1, 1, 0, 0] * 4)
        h = bdd.apply_and(f, g)
        stats = bdd.cache_stats()["tiers"]["and"]
        size_before = stats["size"]
        assert size_before > 0
        bdd.collect([f, g, h])  # everything cached is still alive
        kept = bdd.cache_stats()["tiers"]["and"]
        assert kept["size"] == size_before
        hits_before = kept["hits"]
        assert bdd.apply_and(f, g) == h
        assert bdd.cache_stats()["tiers"]["and"]["hits"] == hits_before + 1


class TestKernelMatchesReference:
    @settings(max_examples=50, deadline=None)
    @given(TABLE, TABLE, TABLE)
    def test_ops_agree_with_recursive_reference(self, ta, tb, tc):
        # Same manager, so canonicity makes agreement an id equality.
        bdd, vids, f = build(ta)
        g = from_truth_table(bdd, vids, tb)
        h = from_truth_table(bdd, vids, tc)
        gid = bdd.var_group(vids[:2])
        assert bdd.apply_and(f, g) == reference.ref_apply_and(bdd, f, g)
        assert bdd.apply_or(f, g) == reference.ref_apply_or(bdd, f, g)
        assert bdd.apply_xor(f, g) == reference.ref_apply_xor(bdd, f, g)
        assert bdd.apply_not(f) == reference.ref_apply_not(bdd, f)
        assert bdd.ite(f, g, h) == reference.ref_ite(bdd, f, g, h)
        assert bdd.cofactor(f, vids[1], 1) == reference.ref_cofactor(
            bdd, f, vids[1], 1
        )
        assert bdd.compose(f, vids[0], g) == reference.ref_compose(
            bdd, f, vids[0], g
        )
        assert bdd.exists(f, gid) == reference.ref_exists(bdd, f, gid)
        assert bdd.forall(f, gid) == reference.ref_forall(bdd, f, gid)


class TestCacheBookkeeping:
    def test_eviction_keeps_table_bounded(self):
        bdd = BDD(cache_capacity=16)
        vids = bdd.add_vars([f"x{i}" for i in range(8)])
        # Many distinct conjunctions of independent literal pairs: each
        # is a fresh cache key, forcing eviction batches.
        import itertools

        for i, j in itertools.combinations(range(8), 2):
            bdd.apply_and(bdd.var(vids[i]), bdd.var(vids[j]))
            bdd.apply_and(bdd.nvar(vids[i]), bdd.var(vids[j]))
        tier = bdd.cache_stats()["tiers"]["and"]
        assert tier["evictions"] > 0
        assert tier["size"] <= 16
        assert tier["inserts"] == tier["misses"]

    def test_cache_stats_shape(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b"])
        bdd.apply_and(bdd.var(vids[0]), bdd.var(vids[1]))
        st_ = bdd.cache_stats()
        assert set(st_) == {
            "tiers",
            "totals",
            "epoch",
            "op_calls",
            "kernel_steps",
            "tt",
            "alive_nodes",
            "peak_nodes",
        }
        for name in ("and", "or", "xor", "not", "ite"):
            assert name in st_["tiers"]
        totals = st_["totals"]
        assert totals["hits"] + totals["misses"] > 0
        assert 0.0 <= totals["hit_rate"] <= 1.0
        tt_block = st_["tt"]
        assert set(tt_block) == {
            "enabled",
            "window",
            "fast_hits",
            "fast_misses",
            "words",
            "fast_hit_rate",
        }
        assert 0.0 <= tt_block["fast_hit_rate"] <= 1.0
        assert st_["op_calls"] >= 1
        assert st_["peak_nodes"] >= st_["alive_nodes"]

    def test_clear_cache_counts_invalidations(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b", "c"])
        bdd.apply_or(bdd.var(vids[0]), bdd.var(vids[1]))
        size = bdd.cache_stats()["tiers"]["or"]["size"]
        assert size > 0
        bdd.clear_cache()
        tier = bdd.cache_stats()["tiers"]["or"]
        assert tier["size"] == 0
        assert tier["invalidations"] >= size
