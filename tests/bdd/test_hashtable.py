"""Unit tests for the packed-key tables (repro.bdd.hashtable).

Covers the key packing round-trips, the dict-backed UniqueTable API
under insert/discard churn (differentially against a model dict), and
the PackedCache's growth, bounded-overwrite eviction, and
generation-stamp purge behaviour.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CapacityError
from repro.bdd.hashtable import (
    KIND_BINARY,
    KIND_ITE,
    MAX_NODE_ID,
    PackedCache,
    UniqueTable,
    check_capacity,
    pack2,
    pack3,
    unpack2,
    unpack3,
)

FIELD = st.integers(0, (1 << 32) - 1)


class TestPacking:
    @settings(max_examples=200, deadline=None)
    @given(FIELD, FIELD)
    def test_pack2_round_trip(self, a, b):
        assert unpack2(pack2(a, b)) == (a, b)

    @settings(max_examples=200, deadline=None)
    @given(FIELD, FIELD, FIELD)
    def test_pack3_round_trip(self, a, b, c):
        assert unpack3(pack3(a, b, c)) == (a, b, c)

    @settings(max_examples=100, deadline=None)
    @given(FIELD, FIELD, FIELD, FIELD)
    def test_pack2_injective(self, a, b, c, d):
        if (a, b) != (c, d):
            assert pack2(a, b) != pack2(c, d)

    def test_pack_extremes(self):
        top = (1 << 32) - 1
        assert unpack2(pack2(top, top)) == (top, top)
        assert unpack3(pack3(top, 0, top)) == (top, 0, top)
        assert pack2(0, 0) == 0


class TestUniqueTable:
    def test_basic_api(self):
        t = UniqueTable()
        assert len(t) == 0
        assert t.lookup(pack2(3, 4)) == -1
        t.insert(pack2(3, 4), 7)
        assert t.lookup(pack2(3, 4)) == 7
        assert t.get((3, 4)) == 7
        assert t.get((4, 3)) is None
        assert len(t) == 1
        assert t.discard(pack2(3, 4)) == 7
        assert t.discard(pack2(3, 4)) == -1
        assert len(t) == 0

    def test_iteration_views(self):
        t = UniqueTable()
        pairs = {(2, 9): 5, (9, 2): 6, (0, 1): 2}
        for (lo, hi), u in pairs.items():
            t.insert(pack2(lo, hi), u)
        assert dict(t.items()) == pairs
        assert {k: v for k, v in t.iter_packed()} == {
            pack2(lo, hi): u for (lo, hi), u in pairs.items()
        }
        assert sorted(t.values()) == sorted(pairs.values())

    def test_churn_against_model(self):
        """Random insert/discard/lookup churn matches a model dict.

        Exercises the delete-heavy pattern of adjacent-level swaps:
        entries leave and re-enter the table under the same keys.
        """
        rng = random.Random(0xBDD)
        t = UniqueTable()
        model: dict[int, int] = {}
        keys = [pack2(rng.randrange(1 << 20), rng.randrange(1 << 20)) for _ in range(200)]
        for step in range(5000):
            key = keys[rng.randrange(len(keys))]
            op = rng.randrange(3)
            if op == 0 and key not in model:
                model[key] = step
                t.insert(key, step)
            elif op == 1:
                assert t.discard(key) == model.pop(key, -1)
            else:
                assert t.lookup(key) == model.get(key, -1)
            assert len(t) == len(model)
        assert dict(t.iter_packed()) == model


def _stamps(n):
    """A generation list long enough for node ids below ``n``."""
    return [0] * n


class TestPackedCache:
    def test_hit_miss_round_trip(self):
        gen = _stamps(100)
        c = PackedCache("t", 1 << 12, KIND_BINARY)
        key = pack2(10, 20)
        assert c.get_n2(key, 10, 20, gen) == -1
        c.put_n2(key, 10, 20, 30, gen)
        assert c.get_n2(key, 10, 20, gen) == 30
        assert c.hits == 1 and c.misses == 1 and c.inserts == 1

    def test_stale_stamp_reads_as_miss(self):
        gen = _stamps(100)
        c = PackedCache("t", 1 << 12, KIND_BINARY)
        key = pack2(10, 20)
        c.put_n2(key, 10, 20, 30, gen)
        gen[20] += 1  # operand node recycled
        assert c.get_n2(key, 10, 20, gen) == -1
        gen[20] -= 1
        gen[30] += 1  # result node recycled
        assert c.get_n2(key, 10, 20, gen) == -1

    def test_growth_up_to_capacity(self):
        rng = random.Random(7)
        gen = _stamps(1 << 17)
        c = PackedCache("t", 1 << 14, KIND_BINARY)
        assert c.mask + 1 == 1 << 10  # starts small
        for _ in range(1 << 13):
            a = rng.randrange(2, 1 << 16)
            b = rng.randrange(2, 1 << 16)
            c.put_n2(pack2(a, b), a, b, a, gen)
        assert c.mask + 1 == c.capacity  # doubled up to the bound
        assert c.size <= c.capacity

    def test_bounded_with_overwrite_eviction(self):
        """Insert far more keys than capacity: size stays bounded and
        the overflow is counted as evictions, never an error."""
        n = 1 << 14
        gen = _stamps(2 * n + 4)
        c = PackedCache("t", 256, KIND_BINARY)
        for i in range(2, n):
            c.put_n2(pack2(i, i + 1), i, i + 1, i, gen)
        assert c.size <= 256
        assert c.evictions > 0
        assert c.inserts == n - 2
        # Whatever is resident must still read back correctly.
        live = 0
        for key, value in c.entries():
            a, b = key
            assert c.get_n2(pack2(a, b), a, b, gen) == value[0]
            live += 1
        assert live == c.size

    def test_purge_drops_only_stale_entries(self):
        gen = _stamps(64)
        c = PackedCache("t", 1 << 12, KIND_BINARY)
        pairs = [(2, 3), (4, 6), (8, 12), (16, 24), (32, 48)]
        for a, b in pairs:
            c.put_n2(pack2(a, b), a, b, a, gen)
        assert c.size == len(pairs)
        gen[4] += 1  # kills the (4, 6) entry only
        dropped = c.purge(gen, epoch=0)
        assert dropped == 1
        assert c.size == len(pairs) - 1
        assert c.invalidations == 1
        assert c.get_n2(pack2(4, 6), 4, 6, gen) == -1
        assert c.get_n2(pack2(8, 12), 8, 12, gen) == 8

    def test_same_xor_pairs_spread(self):
        """Regression: sibling pairs sharing an xor must not collide.

        With the naive ``(key ^ (key >> 32)) * K & mask`` slot function
        the high key field cancels modulo a power of two, so all pairs
        ``(f, f + 1)`` with even ``f`` (xor 1 — ubiquitous cofactor
        pairs in apply workloads) contended for one two-slot bucket and
        evicted each other on every insert.  The staggered-shift mixer
        must keep them resident.
        """
        gen = _stamps(1 << 12)
        c = PackedCache("t", 1 << 12, KIND_BINARY)
        n = 500
        for f in range(2, 2 + 2 * n, 2):
            c.put_n2(pack2(f, f + 1), f, f + 1, f, gen)
        assert c.size > n // 2
        for f in range(2, 2 + 2 * n, 2):
            if c.get_n2(pack2(f, f + 1), f, f + 1, gen) != -1:
                break
        else:
            raise AssertionError("every same-xor pair was evicted")

    def test_three_operand_kind(self):
        gen = _stamps(64)
        c = PackedCache("t", 1 << 12, KIND_ITE)
        key = pack3(3, 4, 5)
        c.put_n3(key, 3, 4, 5, 6, gen)
        assert c.get_n3(key, 3, 4, 5, gen) == 6
        assert dict(c.entries()) == {(3, 4, 5): (6, 0, 0, 0, 0)}
        gen[5] += 1
        assert c.purge(gen, epoch=0) == 1

    def test_clear_counts_invalidations(self):
        gen = _stamps(16)
        c = PackedCache("t", 1 << 10, KIND_BINARY)
        c.put_n2(pack2(2, 3), 2, 3, 4, gen)
        c.clear()
        assert c.size == 0
        assert c.invalidations == 1
        assert c.get_n2(pack2(2, 3), 2, 3, gen) == -1

    def test_stats_shape(self):
        c = PackedCache("t", 1 << 10, KIND_BINARY)
        s = c.stats()
        assert set(s) == {
            "size",
            "capacity",
            "hits",
            "misses",
            "inserts",
            "evictions",
            "invalidations",
            "hit_rate",
        }


class TestCapacityGuard:
    """Pin the node-id capacity fix: allocation refuses ids the packed
    32-bit key fields cannot represent, instead of silently aliasing."""

    def test_boundary_id_is_accepted(self):
        check_capacity(0)
        check_capacity(MAX_NODE_ID)

    def test_reserved_and_overflow_ids_raise(self):
        for next_id in (MAX_NODE_ID + 1, 1 << 32, (1 << 33) + 7):
            with pytest.raises(CapacityError) as exc:
                check_capacity(next_id)
            assert exc.value.limit == MAX_NODE_ID
            assert str(next_id) in str(exc.value)

    def test_max_node_id_leaves_empty_marker_free(self):
        # 2**32 - 1 masks to the _EMPTY slot marker; the guard must keep
        # it unallocatable.
        assert MAX_NODE_ID == (1 << 32) - 2

    def test_capacity_error_is_a_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(CapacityError, ReproError)

    def test_mk_refuses_to_allocate_past_the_boundary(self):
        """BDD.mk consults the guard on the fresh-allocation branch; a
        manager whose id space is (apparently) full raises CapacityError
        instead of packing a 33-bit id."""
        from repro.bdd import BDD, FALSE, TRUE

        bdd = BDD()
        (v,) = bdd.add_vars(["x"])
        bdd.mk(v, FALSE, TRUE)  # interned: no fresh allocation below

        class HugeList(list):
            def __len__(self):
                return MAX_NODE_ID + 1

        bdd._vid = HugeList(bdd._vid)
        # Cached node: still fine (no allocation).
        assert bdd.mk(v, FALSE, TRUE) >= 2
        # Fresh node: would need id 2**32 - 1 — refused.
        with pytest.raises(CapacityError):
            bdd.mk(v, TRUE, FALSE)
