"""Property tests of the invariant checker (hypothesis).

Soundness: every state the engine actually produces — random ISFs built
into characteristic functions, sifted or not, round-tripped through the
serializer — passes :func:`check_manager` / :func:`check_charfunction` /
:func:`check_payload` with zero violations.

Sensitivity: every seeded corruption class in a payload (dangling
child, flipped edge breaking the order, redundant node, duplicate
triple, out-of-range root, output above its support) is flagged with
the right violation ``kind``.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings

from repro.bdd import BDD, check
from repro.bdd.io import charfunction_payload, load_charfunction_payload
from repro.cf.charfun import CharFunction
from repro.errors import IntegrityError

from tests.conftest import spec_strategy

SETTINGS = settings(max_examples=40, deadline=None)


def build_cf(spec) -> CharFunction:
    return CharFunction.from_spec(spec)


class TestCleanStatesPass:
    @SETTINGS
    @given(spec_strategy())
    def test_fresh_cf_manager_is_clean(self, spec):
        cf = build_cf(spec)
        assert check.check_manager(cf.bdd, [cf.root]) == []
        assert check.check_charfunction(cf) == []

    @SETTINGS
    @given(spec_strategy(max_inputs=3, max_outputs=2))
    def test_sifted_cf_is_clean(self, spec):
        cf = build_cf(spec)
        cf.sift()
        assert check.check_charfunction(cf) == []

    @SETTINGS
    @given(spec_strategy())
    def test_serialized_payload_is_clean(self, spec):
        payload = charfunction_payload(build_cf(spec))
        assert check.check_payload(payload) == []

    @SETTINGS
    @given(spec_strategy())
    def test_roundtrip_stays_clean(self, spec):
        # load_* runs verify_* internally; a clean payload must survive.
        cf = load_charfunction_payload(charfunction_payload(build_cf(spec)))
        assert check.check_charfunction(cf) == []

    def test_manager_after_gc_is_clean(self):
        bdd = BDD()
        x1, x2, x3 = bdd.add_vars(["x1", "x2", "x3"])
        f = bdd.apply_and(bdd.var(x1), bdd.apply_or(bdd.var(x2), bdd.var(x3)))
        bdd.collect([f])
        assert check.check_manager(bdd, [f]) == []


def _nontrivial_payload():
    """A payload with at least one decision node, deterministically."""
    bdd = BDD()
    x1, x2, x3 = bdd.add_vars(["x1", "x2", "x3"])
    f = bdd.apply_or(
        bdd.apply_and(bdd.var(x1), bdd.var(x2)),
        bdd.apply_and(bdd.var(x2), bdd.var(x3)),
    )
    from repro.bdd.io import forest_payload

    return forest_payload(bdd, {"f": f})


def _kinds(violations):
    return {v.kind for v in violations}


class TestCorruptionDetected:
    """Each mutation class must be flagged with the right kind."""

    def test_dangling_child(self):
        payload = _nontrivial_payload()
        # Point the last node's hi-child past every legal id.
        payload["nodes"][-1][2] = len(payload["nodes"]) + 99
        assert "dangling" in _kinds(check.check_payload(payload))

    def test_forward_reference(self):
        payload = _nontrivial_payload()
        assert len(payload["nodes"]) >= 2
        # First node referencing itself breaks the topological order.
        payload["nodes"][0][1] = 2
        assert "dangling" in _kinds(check.check_payload(payload))

    def test_redundant_node(self):
        payload = _nontrivial_payload()
        node = payload["nodes"][-1]
        node[1] = node[2]
        assert "redundant" in _kinds(check.check_payload(payload))

    def test_ordering_broken(self):
        payload = _nontrivial_payload()
        # Give a node the same variable index as its decision child, if
        # one exists; otherwise manufacture a parent-child level clash.
        for i, (var, lo, hi) in enumerate(payload["nodes"]):
            for child in (lo, hi):
                if child >= 2:
                    payload["nodes"][i][0] = payload["nodes"][child - 2][0]
                    assert "ordering" in _kinds(check.check_payload(payload))
                    return
        pytest.skip("payload had no internal edge")

    def test_duplicate_triple(self):
        payload = _nontrivial_payload()
        payload["nodes"].append(list(payload["nodes"][0]))
        assert "unique_table" in _kinds(check.check_payload(payload))

    def test_root_out_of_range(self):
        payload = _nontrivial_payload()
        payload["roots"]["f"] = len(payload["nodes"]) + 1000
        assert "dangling" in _kinds(check.check_payload(payload))

    def test_wrong_format_marker(self):
        payload = _nontrivial_payload()
        payload["format"] = "not-a-forest"
        assert "format" in _kinds(check.check_payload(payload))

    def test_malformed_variable_entry(self):
        payload = _nontrivial_payload()
        payload["variables"][0] = {"name": 7, "kind": "input"}
        assert "format" in _kinds(check.check_payload(payload))

    def test_duplicate_variable_name(self):
        payload = _nontrivial_payload()
        payload["variables"].append(dict(payload["variables"][0]))
        assert "format" in _kinds(check.check_payload(payload))

    def test_output_above_support(self):
        cf = CharFunction.from_spec(_small_spec())
        payload = charfunction_payload(cf)
        meta = payload["charfunction"]
        # Claim an output is supported by a variable *below* it: list the
        # output itself as its own support (position is never above).
        y = meta["outputs"][0]
        meta["output_supports"][y] = [y]
        assert "output_level" in _kinds(check.check_payload(payload))

    def test_verify_payload_raises_integrity_error(self):
        payload = _nontrivial_payload()
        payload["nodes"][-1][2] = 999
        with pytest.raises(IntegrityError) as excinfo:
            check.verify_payload(payload)
        assert excinfo.value.violations
        assert "dangling" in {v.kind for v in excinfo.value.violations}


def _small_spec():
    from repro.isf.ternary import MultiOutputSpec

    return MultiOutputSpec(2, 1, {0: (1,), 3: (0,)}, name="fixed")


@SETTINGS
@given(spec_strategy(max_inputs=3, max_outputs=2))
def test_mutated_payload_never_silently_passes(spec):
    """Flipping any node's child id either keeps a valid payload
    (coincidentally hitting another legal node is possible only via a
    duplicate triple or an order/reduction break) — so the checker must
    flag every mutation that changes the document at all."""
    payload = charfunction_payload(build_cf(spec))
    nodes = payload["nodes"]
    if not nodes:
        return
    mutated = copy.deepcopy(payload)
    # Send the topmost node's lo-edge to an illegal forward id.
    mutated["nodes"][-1][1] = len(nodes) + 2
    violations = check.check_payload(mutated)
    assert violations, "corrupted payload passed the checker"
    assert _kinds(violations) & {"dangling", "redundant", "unique_table"}


def test_counters_increment():
    before = check.counters_snapshot()
    check.check_payload(_nontrivial_payload())
    bdd = BDD()
    bdd.add_vars(["x1"])
    check.check_manager(bdd)
    after = check.counters_snapshot()
    assert after["payload_checks"] == before["payload_checks"] + 1
    assert after["manager_checks"] == before["manager_checks"] + 1
    assert after["violations"] == before["violations"]
