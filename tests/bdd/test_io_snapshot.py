"""RBCF binary snapshots: round trips, integrity checks, file handling.

The snapshot format exists so a cold shard (or a freshly rebuilt worker
process) warms up by bulk-loading packed node arrays instead of
re-parsing a JSON payload node by node.  These tests pin the contract:
byte-identical semantics with the JSON path (same payload fingerprint),
loud failure on every corruption mode, and atomic file writes.  The
"≥5× faster than JSON" acceptance criterion is measured in
``benchmarks/bench_service.py`` (BENCH_PR8.json), not asserted here —
wall-clock ratios do not belong in tier-1.
"""

import json

import pytest

from repro.benchfns.registry import get_benchmark
from repro.bdd.io import (
    SNAPSHOT_MAGIC,
    charfunction_payload,
    dump_snapshot,
    load_charfunction_payload,
    load_snapshot,
    load_snapshot_bytes,
    payload_fingerprint,
    snapshot_bytes,
)
from repro.cf.charfun import CharFunction
from repro.errors import BDDError


@pytest.fixture(scope="module")
def cf():
    return CharFunction.from_isf(get_benchmark("3-5 RNS").build())


@pytest.fixture(scope="module")
def fingerprint(cf):
    return payload_fingerprint(charfunction_payload(cf))


class TestRoundTrip:
    def test_bytes_round_trip_preserves_fingerprint(self, cf, fingerprint):
        loaded = load_snapshot_bytes(snapshot_bytes(cf))
        assert payload_fingerprint(charfunction_payload(loaded)) == fingerprint

    def test_matches_json_path_semantics(self, cf, fingerprint):
        """Snapshot and JSON loads of the same CF are interchangeable."""
        payload = charfunction_payload(cf)
        via_json = load_charfunction_payload(json.loads(json.dumps(payload)))
        via_snap = load_snapshot_bytes(snapshot_bytes(cf))
        assert payload_fingerprint(
            charfunction_payload(via_json)
        ) == payload_fingerprint(charfunction_payload(via_snap))

    def test_loaded_cf_is_independent_and_usable(self, cf):
        """The rebuilt CF lives in its own manager and can compute."""
        from repro.cf.width import max_width

        loaded = load_snapshot_bytes(snapshot_bytes(cf))
        assert loaded.bdd is not cf.bdd
        assert max_width(loaded.bdd, loaded.root) == max_width(
            cf.bdd, cf.root
        )

    def test_round_trip_survives_selfcheck(self, cf, fingerprint, monkeypatch):
        monkeypatch.setenv("REPRO_SELFCHECK", "1")
        loaded = load_snapshot_bytes(snapshot_bytes(cf))
        assert payload_fingerprint(charfunction_payload(loaded)) == fingerprint

    def test_sifted_cf_round_trips(self):
        cf = CharFunction.from_isf(get_benchmark("3-5 RNS").build())
        cf.sift(cost="auto")
        fp = payload_fingerprint(charfunction_payload(cf))
        loaded = load_snapshot_bytes(snapshot_bytes(cf))
        assert payload_fingerprint(charfunction_payload(loaded)) == fp


class TestIntegrity:
    def test_magic_is_checked(self, cf):
        blob = bytearray(snapshot_bytes(cf))
        blob[:4] = b"NOPE"
        with pytest.raises(BDDError, match="magic"):
            load_snapshot_bytes(bytes(blob))

    def test_version_is_checked(self, cf):
        blob = bytearray(snapshot_bytes(cf))
        blob[4] = 250
        with pytest.raises(BDDError, match="version"):
            load_snapshot_bytes(bytes(blob))

    def test_body_corruption_fails_checksum(self, cf):
        blob = bytearray(snapshot_bytes(cf))
        blob[-3] ^= 0xFF  # flip bits inside the packed body
        with pytest.raises(BDDError, match="checksum"):
            load_snapshot_bytes(bytes(blob))

    def test_truncated_body_is_rejected(self, cf):
        blob = snapshot_bytes(cf)
        with pytest.raises(BDDError, match="body"):
            load_snapshot_bytes(blob[:-8])

    def test_truncated_header_is_rejected(self, cf):
        blob = snapshot_bytes(cf)
        with pytest.raises(BDDError):
            load_snapshot_bytes(blob[:10])

    def test_empty_input_is_rejected(self):
        with pytest.raises(BDDError):
            load_snapshot_bytes(b"")

    def test_magic_constant_leads_the_file(self, cf):
        assert snapshot_bytes(cf)[:4] == SNAPSHOT_MAGIC


class TestFiles:
    def test_dump_load_file_round_trip(self, cf, fingerprint, tmp_path):
        path = tmp_path / "cf.rbcf"
        assert dump_snapshot(cf, path) == path
        loaded = load_snapshot(path)
        assert payload_fingerprint(charfunction_payload(loaded)) == fingerprint

    def test_dump_is_atomic_no_temp_leftovers(self, cf, tmp_path):
        dump_snapshot(cf, tmp_path / "cf.rbcf")
        assert [p.name for p in tmp_path.iterdir()] == ["cf.rbcf"]

    def test_dump_creates_parent_directories(self, cf, tmp_path):
        path = tmp_path / "nested" / "dir" / "cf.rbcf"
        dump_snapshot(cf, path)
        assert path.exists()

    def test_load_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_snapshot(tmp_path / "absent.rbcf")

    def test_load_corrupt_file_raises_bdderror(self, cf, tmp_path):
        path = tmp_path / "cf.rbcf"
        blob = bytearray(snapshot_bytes(cf))
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(BDDError):
            load_snapshot(path)
