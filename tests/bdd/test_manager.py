"""Unit tests for the ROBDD manager."""

import pytest

from repro.bdd import BDD, FALSE, TRUE
from repro.errors import ForeignNodeError, VariableError


class TestVariables:
    def test_add_and_lookup(self):
        bdd = BDD()
        v = bdd.add_var("x")
        assert bdd.vid("x") == v
        assert bdd.name_of(v) == "x"
        assert bdd.kind_of(v) == "input"

    def test_output_kind(self):
        bdd = BDD()
        y = bdd.add_var("y", kind="output")
        assert bdd.is_output_vid(y)

    def test_duplicate_rejected(self):
        bdd = BDD()
        bdd.add_var("x")
        with pytest.raises(VariableError):
            bdd.add_var("x")

    def test_bad_kind_rejected(self):
        bdd = BDD()
        with pytest.raises(VariableError):
            bdd.add_var("x", kind="banana")

    def test_unknown_name(self):
        bdd = BDD()
        with pytest.raises(VariableError):
            bdd.vid("nope")

    def test_initial_order_is_creation_order(self):
        bdd = BDD()
        bdd.add_vars(["a", "b", "c"])
        assert bdd.order() == ["a", "b", "c"]
        assert bdd.level_of_vid(bdd.vid("b")) == 1
        assert bdd.vid_at_level(2) == bdd.vid("c")


class TestNodeStructure:
    def test_terminals(self):
        bdd = BDD()
        assert bdd.is_terminal(FALSE)
        assert bdd.is_terminal(TRUE)
        with pytest.raises(ForeignNodeError):
            bdd.var_of(TRUE)
        with pytest.raises(ForeignNodeError):
            bdd.lo(FALSE)

    def test_mk_reduction(self):
        bdd = BDD()
        x = bdd.add_var("x")
        assert bdd.mk(x, TRUE, TRUE) == TRUE
        assert bdd.mk(x, FALSE, FALSE) == FALSE

    def test_mk_hash_consing(self):
        bdd = BDD()
        x = bdd.add_var("x")
        u1 = bdd.mk(x, FALSE, TRUE)
        u2 = bdd.mk(x, FALSE, TRUE)
        assert u1 == u2

    def test_var_and_nvar(self):
        bdd = BDD()
        x = bdd.add_var("x")
        f = bdd.var(x)
        g = bdd.nvar("x")
        assert bdd.evaluate(f, {x: 1}) == 1
        assert bdd.evaluate(f, {x: 0}) == 0
        assert g == bdd.apply_not(f)


class TestBooleanOps:
    def _two_vars(self):
        bdd = BDD()
        x, y = bdd.add_vars(["x", "y"])
        return bdd, bdd.var(x), bdd.var(y)

    def test_and_terminal_rules(self):
        bdd, x, y = self._two_vars()
        assert bdd.apply_and(FALSE, x) == FALSE
        assert bdd.apply_and(TRUE, x) == x
        assert bdd.apply_and(x, x) == x

    def test_or_terminal_rules(self):
        bdd, x, y = self._two_vars()
        assert bdd.apply_or(TRUE, x) == TRUE
        assert bdd.apply_or(FALSE, x) == x
        assert bdd.apply_or(x, x) == x

    def test_xor_rules(self):
        bdd, x, y = self._two_vars()
        assert bdd.apply_xor(x, x) == FALSE
        assert bdd.apply_xor(x, FALSE) == x
        assert bdd.apply_xor(x, TRUE) == bdd.apply_not(x)

    def test_de_morgan(self):
        bdd, x, y = self._two_vars()
        lhs = bdd.apply_not(bdd.apply_and(x, y))
        rhs = bdd.apply_or(bdd.apply_not(x), bdd.apply_not(y))
        assert lhs == rhs

    def test_not_involution(self):
        bdd, x, y = self._two_vars()
        f = bdd.apply_or(x, bdd.apply_not(y))
        assert bdd.apply_not(bdd.apply_not(f)) == f

    def test_ite_equals_mux(self):
        bdd, x, y = self._two_vars()
        z = bdd.var(bdd.add_var("z"))
        ite = bdd.ite(x, y, z)
        manual = bdd.apply_or(bdd.apply_and(x, y), bdd.apply_and(bdd.apply_not(x), z))
        assert ite == manual

    def test_ite_terminal_cases(self):
        bdd, x, y = self._two_vars()
        assert bdd.ite(TRUE, x, y) == x
        assert bdd.ite(FALSE, x, y) == y
        assert bdd.ite(x, TRUE, FALSE) == x
        assert bdd.ite(x, FALSE, TRUE) == bdd.apply_not(x)
        assert bdd.ite(x, y, y) == y

    def test_xnor(self):
        bdd, x, y = self._two_vars()
        f = bdd.xnor(x, y)
        for a in (0, 1):
            for b in (0, 1):
                assert bdd.evaluate(f, {0: a, 1: b}) == (1 if a == b else 0)

    def test_implies(self):
        bdd, x, y = self._two_vars()
        assert bdd.implies(bdd.apply_and(x, y), x)
        assert not bdd.implies(x, bdd.apply_and(x, y))


class TestCofactorRestrictCompose:
    def test_cofactor(self):
        bdd = BDD()
        x, y = bdd.add_vars(["x", "y"])
        f = bdd.apply_and(bdd.var(x), bdd.var(y))
        assert bdd.cofactor(f, x, 1) == bdd.var(y)
        assert bdd.cofactor(f, x, 0) == FALSE

    def test_cofactor_of_independent_var(self):
        bdd = BDD()
        x, y = bdd.add_vars(["x", "y"])
        f = bdd.var(y)
        assert bdd.cofactor(f, x, 0) == f

    def test_restrict_multiple(self):
        bdd = BDD()
        x, y, z = bdd.add_vars(["x", "y", "z"])
        f = bdd.apply_or(bdd.apply_and(bdd.var(x), bdd.var(y)), bdd.var(z))
        r = bdd.restrict(f, {x: 1, z: 0})
        assert r == bdd.var(y)

    def test_compose(self):
        bdd = BDD()
        x, y, z = bdd.add_vars(["x", "y", "z"])
        f = bdd.apply_and(bdd.var(x), bdd.var(y))
        g = bdd.apply_or(bdd.var(y), bdd.var(z))
        h = bdd.compose(f, x, g)
        expected = bdd.apply_and(g, bdd.var(y))
        assert h == expected


class TestQuantification:
    def test_exists(self):
        bdd = BDD()
        x, y = bdd.add_vars(["x", "y"])
        f = bdd.apply_and(bdd.var(x), bdd.var(y))
        gid = bdd.var_group([x])
        assert bdd.exists(f, gid) == bdd.var(y)

    def test_forall(self):
        bdd = BDD()
        x, y = bdd.add_vars(["x", "y"])
        f = bdd.apply_or(bdd.var(x), bdd.var(y))
        gid = bdd.var_group([x])
        assert bdd.forall(f, gid) == bdd.var(y)

    def test_group_reuse(self):
        bdd = BDD()
        x, y = bdd.add_vars(["x", "y"])
        g1 = bdd.var_group([x, y])
        g2 = bdd.var_group({y, x})
        assert g1 == g2
        assert bdd.group_vars(g1) == frozenset((x, y))


class TestInspection:
    def test_support(self):
        bdd = BDD()
        x, y, z = bdd.add_vars(["x", "y", "z"])
        f = bdd.apply_and(bdd.var(x), bdd.var(z))
        assert bdd.support(f) == {x, z}
        assert bdd.support(TRUE) == set()

    def test_evaluate_missing_var(self):
        bdd = BDD()
        x = bdd.add_var("x")
        with pytest.raises(VariableError):
            bdd.evaluate(bdd.var(x), {})

    def test_count_nodes(self):
        bdd = BDD()
        x, y = bdd.add_vars(["x", "y"])
        f = bdd.apply_and(bdd.var(x), bdd.var(y))
        assert bdd.count_nodes(f) == 2
        assert bdd.count_nodes(TRUE) == 0

    def test_sat_count(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b", "c"])
        f = bdd.apply_or(bdd.var(vids[0]), bdd.var(vids[1]))
        assert bdd.sat_count(f, vids=vids) == 6
        assert bdd.sat_count(FALSE, vids=vids) == 0
        assert bdd.sat_count(TRUE, vids=vids) == 8

    def test_sat_count_subuniverse(self):
        bdd = BDD()
        vids = bdd.add_vars(["a", "b", "c"])
        f = bdd.var(vids[1])
        assert bdd.sat_count(f, vids=[vids[1]]) == 1

    def test_iter_onset_cubes(self):
        bdd = BDD()
        x, y = bdd.add_vars(["x", "y"])
        f = bdd.apply_or(bdd.var(x), bdd.var(y))
        cubes = list(bdd.iter_onset_cubes(f))
        # Every cube satisfies f; together they cover exactly the onset.
        covered = set()
        for cube in cubes:
            free = [v for v in (x, y) if v not in cube]
            for fill in range(1 << len(free)):
                asg = dict(cube)
                for i, v in enumerate(free):
                    asg[v] = (fill >> i) & 1
                assert bdd.evaluate(f, asg) == 1
                covered.add((asg[x], asg[y]))
        assert covered == {(0, 1), (1, 0), (1, 1)}


class TestMaintenance:
    def test_collect_frees_garbage(self):
        bdd = BDD()
        x, y = bdd.add_vars(["x", "y"])
        keep = bdd.apply_and(bdd.var(x), bdd.var(y))
        bdd.apply_or(bdd.var(x), bdd.var(y))  # garbage
        before = bdd.num_alive_nodes()
        freed = bdd.collect([keep])
        assert freed > 0
        assert bdd.num_alive_nodes() < before
        # The kept function is still intact.
        assert bdd.evaluate(keep, {x: 1, y: 1}) == 1
        bdd.check_invariants([keep])

    def test_node_ids_recycled(self):
        bdd = BDD()
        x = bdd.add_var("x")
        f = bdd.var(x)
        bdd.collect([])
        g = bdd.var(x)
        assert g == f  # the freed slot is reused for the identical node

    def test_clear_cache_keeps_semantics(self):
        bdd = BDD()
        x, y = bdd.add_vars(["x", "y"])
        f = bdd.apply_and(bdd.var(x), bdd.var(y))
        bdd.clear_cache()
        assert bdd.apply_and(bdd.var(x), bdd.var(y)) == f
