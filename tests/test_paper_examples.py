"""End-to-end assertions of every worked example in the paper.

Each test cites the example/table/figure it reproduces; these are the
strongest evidence the implementation matches the published system.
"""

import pytest

from repro.bdd import BDD, from_cubes
from repro.cf import CharFunction, max_width, width_profile
from repro.decomp import DecompositionChart, table2_spec
from repro.isf import MultiOutputISF, table1_spec
from repro.reduce import algorithm_3_1, algorithm_3_3
from repro.benchfns import pnary_benchmark


class TestExample21:
    """Example 2.1: the cover functions of the Table 1 function."""

    def test_f1_cover_functions(self):
        spec = table1_spec()
        isf = MultiOutputISF.from_spec(spec)
        bdd = isf.bdd
        x1, x2, x3, x4 = isf.input_vids
        # f1_0 = ~x1~x2x3 | x1~x2~x3
        f1_0 = from_cubes(
            bdd,
            [{x1: 0, x2: 0, x3: 1}, {x1: 1, x2: 0, x3: 0}],
        )
        # f1_1 = ~x1x2x3 | x1~x2x3 | x1x2~x3
        f1_1 = from_cubes(
            bdd,
            [{x1: 0, x2: 1, x3: 1}, {x1: 1, x2: 0, x3: 1}, {x1: 1, x2: 1, x3: 0}],
        )
        assert isf.outputs[0].f0 == f1_0
        assert isf.outputs[0].f1 == f1_1

    def test_f2_cover_functions(self):
        spec = table1_spec()
        isf = MultiOutputISF.from_spec(spec)
        bdd = isf.bdd
        x1, x2, x3, x4 = isf.input_vids
        # f2_0 = ~x1~x2x3 | x1~x2x3 | x2x3~x4 ; f2_1 = ~x2~x3 | x2x3x4
        f2_0 = from_cubes(
            bdd,
            [{x1: 0, x2: 0, x3: 1}, {x1: 1, x2: 0, x3: 1}, {x2: 1, x3: 1, x4: 0}],
        )
        f2_1 = from_cubes(bdd, [{x2: 0, x3: 0}, {x2: 1, x3: 1, x4: 1}])
        assert isf.outputs[1].f0 == f2_0
        assert isf.outputs[1].f1 == f2_1

    def test_characteristic_function_formula(self):
        """Definition 2.3: chi = prod of (~y f0 | y f1 | fd)."""
        spec = table1_spec()
        isf = MultiOutputISF.from_spec(spec)
        cf = CharFunction.from_isf(isf)
        # chi(X, Y) = 1 exactly when each y_i is an allowed value.
        for m, values in spec.care.items():
            bits = [(m >> (3 - i)) & 1 for i in range(4)]
            for y1 in (0, 1):
                for y2 in (0, 1):
                    want = all(
                        v is None or v == y
                        for v, y in zip(values, (y1, y2))
                    )
                    assert cf.evaluate(bits, [y1, y2]) == int(want)


class TestExample22:
    """Example 2.2 / Fig. 2: both CFs of the Table 1 function."""

    def test_isf_cf_shape(self):
        cf = CharFunction.from_spec(table1_spec())
        assert cf.num_nodes() == 15
        assert max_width(cf.bdd, cf.root) == 8

    def test_dc_paths_skip_output_nodes(self):
        cf = CharFunction.from_spec(table1_spec())
        # Row 0100: both outputs d -> restricting to it gives constant 1
        # (every output node skipped).
        restricted = cf.bdd.restrict(
            cf.root, dict(zip(cf.input_vids, [0, 1, 0, 0]))
        )
        assert restricted == 1

    def test_complete_cf_has_all_outputs_on_paths(self):
        isf = MultiOutputISF.from_spec(table1_spec())
        cf = CharFunction.from_isf(isf.extension(0))
        # Completely specified: every input leads through both y nodes.
        for m in range(16):
            pattern = cf.output_pattern(m)
            assert all(v is not None for v in pattern)


class TestExamples33and34:
    """Examples 3.3/3.4, Tables 2-3, Fig. 7: column multiplicity 4 -> 2."""

    def test_mu_values(self):
        chart = DecompositionChart(table2_spec(), [0, 1])
        assert chart.column_multiplicity() == 4
        mu, cliques = chart.minimized_multiplicity()
        assert mu == 2
        assert chart.merged(cliques).column_multiplicity() == 2


class TestExample35:
    """Example 3.5 / Fig. 5: Algorithm 3.1, width 8 -> 5, nodes 15 -> 12."""

    def test_numbers(self):
        cf = CharFunction.from_spec(table1_spec())
        reduced = algorithm_3_1(cf)
        assert max_width(cf.bdd, cf.root) == 8
        assert cf.num_nodes() == 15
        assert max_width(reduced.bdd, reduced.root) == 5
        assert reduced.num_nodes() == 12


class TestExample36:
    """Example 3.6 / Fig. 6: Algorithm 3.3, width 8 -> 4, nodes 15 -> 12."""

    def test_numbers(self):
        cf = CharFunction.from_spec(table1_spec())
        reduced, _ = algorithm_3_3(cf)
        assert max_width(reduced.bdd, reduced.root) == 4
        assert reduced.num_nodes() == 12

    def test_width_profile_nonincreasing_everywhere(self):
        cf = CharFunction.from_spec(table1_spec())
        before = width_profile(cf.bdd, cf.root)
        reduced, _ = algorithm_3_3(cf)
        after = width_profile(reduced.bdd, reduced.root)
        assert all(a <= b for a, b in zip(after, before))


class TestExample47:
    """Example 4.7: don't-care ratio of the 10-digit ternary converter."""

    def test_ratios(self):
        b = pnary_benchmark(10, 3)
        specified = 1 - b.input_dc_ratio()
        assert specified == pytest.approx(0.75**10)
        assert round(specified, 4) == 0.0563
        assert round(b.input_dc_ratio(), 4) == 0.9437
