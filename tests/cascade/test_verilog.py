"""Tests for Verilog export of cascades."""

import re

import pytest

from repro.cascade import Cascade, cascade_to_verilog, synthesize_cascade
from repro.cf import CharFunction
from repro.errors import CascadeError
from repro.isf import table1_spec


@pytest.fixture(scope="module")
def cascade_and_cf():
    cf = CharFunction.from_spec(table1_spec())
    cascade = synthesize_cascade(cf, max_cell_inputs=3, max_cell_outputs=3)
    return cascade, cf


class TestVerilogExport:
    def test_module_structure(self, cascade_and_cf):
        cascade, cf = cascade_and_cf
        v = cascade_to_verilog(cascade, module_name="table1")
        assert v.startswith("//")
        assert "module table1 (" in v
        assert v.rstrip().endswith("endmodule")
        assert v.count("case (") == cascade.num_cells

    def test_ports_for_all_vars(self, cascade_and_cf):
        cascade, cf = cascade_and_cf
        names = {v: cf.bdd.name_of(v) for v in cascade.input_vids}
        onames = {v: cf.bdd.name_of(v) for v in cascade.output_vids}
        v = cascade_to_verilog(cascade, input_names=names, output_names=onames)
        for nm in names.values():
            assert f"input  wire {nm}" in v
        for nm in onames.values():
            assert f"output wire {nm}" in v

    def test_case_entries_match_tables(self, cascade_and_cf):
        cascade, _ = cascade_and_cf
        v = cascade_to_verilog(cascade)
        for cell in cascade.cells:
            # One case arm per table entry plus a default.
            arms = re.findall(rf"cell{cell.index}_data = ", v)
            assert len(arms) == len(cell.table) + 1

    def test_rail_wires_chain(self, cascade_and_cf):
        cascade, _ = cascade_and_cf
        v = cascade_to_verilog(cascade)
        for cell in cascade.cells[:-1]:
            if cell.rail_out_width:
                assert f"cell{cell.index}_rail" in v

    def test_name_sanitization(self):
        from repro.cascade.verilog import _sanitize

        assert _sanitize("a-b c") == "a_b_c"
        assert _sanitize("1bad") == "p_1bad"
        assert _sanitize("") == "p_"

    def test_empty_cascade_rejected(self):
        with pytest.raises(CascadeError):
            cascade_to_verilog(Cascade([]))
