"""Tests for wiring cascades back to integer functions."""

import pytest

from repro.cascade import realize_forest, synthesize_forest
from repro.cf import CharFunction
from repro.errors import CascadeError
from repro.isf import MultiOutputISF, table1_spec


def make_forest(max_out=10):
    isf = MultiOutputISF.from_spec(table1_spec())

    def pipeline(indices):
        part = MultiOutputISF(
            isf.bdd,
            isf.input_vids,
            [isf.outputs[i] for i in indices],
            output_names=[isf.output_names[i] for i in indices],
        )
        return CharFunction.from_isf(part)

    return synthesize_forest([0, 1], pipeline, max_cell_outputs=max_out)


class TestRealization:
    def test_single_part(self):
        forest = make_forest()
        fr = realize_forest(forest, 4, 2)
        assert len(fr.parts) == 1
        spec = table1_spec()
        for m, values in spec.care.items():
            got = fr.evaluate(m)
            bits = [(got >> 1) & 1, got & 1]
            for g, want in zip(bits, values):
                if want is not None:
                    assert g == want

    def test_multi_part_wiring(self):
        forest = make_forest(max_out=1)  # forces one cascade per output
        assert len(forest) >= 2
        fr = realize_forest(forest, 4, 2)
        spec = table1_spec()
        for m, values in spec.care.items():
            got = fr.evaluate(m)
            bits = [(got >> 1) & 1, got & 1]
            for g, want in zip(bits, values):
                if want is not None:
                    assert g == want

    def test_input_range_guard(self):
        fr = realize_forest(make_forest(), 4, 2)
        with pytest.raises(CascadeError):
            fr.evaluate(-1)
        with pytest.raises(CascadeError):
            fr.evaluate(16)

    def test_output_index_mismatch_detected(self):
        forest = make_forest()
        cascade, cf, indices = forest[0]
        with pytest.raises(CascadeError):
            realize_forest([(cascade, cf, indices[:-1])], 4, 2)

    def test_unused_inputs_ignored(self):
        # A realization over a wider input space than the cascade reads.
        forest = make_forest()
        fr = realize_forest(forest, 4, 2)
        # Positions map only the CF's inputs; evaluation works for all m.
        for m in range(16):
            fr.evaluate(m)
