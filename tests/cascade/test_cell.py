"""Tests for LUT cells and the cascade container."""

import pytest

from repro.cascade import Cascade, Cell, rail_width
from repro.errors import CascadeError


def make_cell():
    """A 1-rail-in, 1-input, 1-output, 1-rail-out cell: (rail XOR x)."""
    table = []
    for rail in (0, 1):
        for x in (0, 1):
            out = rail ^ x
            table.append((out, out))
    return Cell(
        index=0,
        rail_in_width=1,
        input_vids=(7,),
        output_vids=(9,),
        rail_out_width=1,
        table=table,
    )


class TestCell:
    def test_dimensions(self):
        cell = make_cell()
        assert cell.num_inputs == 2
        assert cell.num_outputs == 2
        assert cell.memory_bits == 4 * 2

    def test_lookup(self):
        cell = make_cell()
        assert cell.lookup(0, 1) == (1, 1)
        assert cell.lookup(1, 1) == (0, 0)


class TestRailWidth:
    def test_values(self):
        assert rail_width(0) == 0
        assert rail_width(1) == 0
        assert rail_width(2) == 1
        assert rail_width(4) == 2
        assert rail_width(5) == 3
        assert rail_width(1024) == 10
        assert rail_width(1025) == 11


class TestCascade:
    def test_evaluate_chains_rails(self):
        c1 = Cell(
            index=0,
            rail_in_width=0,
            input_vids=(1,),
            output_vids=(),
            rail_out_width=1,
            table=[(0, 0), (0, 1)],  # rail = x1
        )
        c2 = Cell(
            index=1,
            rail_in_width=1,
            input_vids=(2,),
            output_vids=(5,),
            rail_out_width=0,
            table=[(r ^ x, 0) for r in (0, 1) for x in (0, 1)],  # y = rail ^ x2
        )
        cascade = Cascade([c1, c2])
        assert cascade.num_cells == 2
        assert cascade.num_lut_outputs == 1 + 1
        assert cascade.memory_bits == 2 * 1 + 4 * 1
        assert cascade.input_vids == [1, 2]
        assert cascade.output_vids == [5]
        for a in (0, 1):
            for b in (0, 1):
                out = cascade.evaluate({1: a, 2: b})
                assert out[5] == a ^ b

    def test_missing_input_raises(self):
        cascade = Cascade([make_cell()])
        with pytest.raises(CascadeError):
            cascade.evaluate({})

    def test_extra_inputs_ignored(self):
        cascade = Cascade([make_cell()])
        out = cascade.evaluate({7: 1, 99: 0})
        assert out[9] == 1
