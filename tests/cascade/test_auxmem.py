"""Tests for the Fig. 8 architecture (cascade + AUX memory + comparator)."""

import random

import pytest

from repro.benchfns.wordlist import (
    WORD_BITS,
    WordList,
    encode_word,
    generate_words,
)
from repro.cascade import AddressGenerator
from repro.errors import CascadeError
from repro.experiments.table6 import design_dc0, design_fig8, verify_dc0, verify_generator


@pytest.fixture(scope="module")
def tiny_list():
    return WordList(generate_words(25, seed=7), name="tiny")


class TestAddressGeneratorBuild:
    def test_reject_wrong_output_width(self, tiny_list):
        _, generator = design_fig8(tiny_list, sift=False)
        with pytest.raises(CascadeError):
            AddressGenerator.build(
                generator.realization,
                tiny_list.word_to_index,
                n_bits=WORD_BITS,
                m_bits=tiny_list.index_bits + 1,
            )

    def test_reject_duplicate_index(self, tiny_list):
        _, generator = design_fig8(tiny_list, sift=False)
        words = dict(tiny_list.word_to_index)
        first_two = list(words)[:2]
        words[first_two[0]] = words[first_two[1]]
        with pytest.raises(CascadeError):
            AddressGenerator.build(
                generator.realization,
                words,
                n_bits=WORD_BITS,
                m_bits=tiny_list.index_bits,
            )

    def test_reject_index_zero(self, tiny_list):
        _, generator = design_fig8(tiny_list, sift=False)
        words = dict(tiny_list.word_to_index)
        words[next(iter(words))] = 0
        with pytest.raises(CascadeError):
            AddressGenerator.build(
                generator.realization,
                words,
                n_bits=WORD_BITS,
                m_bits=tiny_list.index_bits,
            )


class TestFig8Designs:
    def test_generator_accepts_exactly_the_word_list(self, tiny_list):
        _, generator = design_fig8(tiny_list, sift=False)
        verify_generator(tiny_list, generator, samples=150)

    def test_dc0_design_exact(self, tiny_list):
        _, realization = design_dc0(tiny_list, sift=False)
        verify_dc0(tiny_list, realization, samples=150)

    def test_fig8_much_smaller_than_dc0(self, tiny_list):
        cost0, _ = design_dc0(tiny_list, sift=False)
        cost8, _ = design_fig8(tiny_list, sift=False)
        assert cost8.lut_memory_bits < cost0.lut_memory_bits
        assert cost8.cells <= cost0.cells
        assert cost8.aux_memory_bits == WORD_BITS * (1 << tiny_list.index_bits)

    def test_lookup_by_string(self, tiny_list):
        _, generator = design_fig8(tiny_list, sift=False)
        word = tiny_list.words[0]
        assert generator.lookup(encode_word(word)) == 1

    def test_invalid_letter_codes_rejected_by_comparator(self, tiny_list):
        _, generator = design_fig8(tiny_list, sift=False)
        rng = random.Random(3)
        # Words containing unused letter codes (27..31) are never
        # registered, so the comparator must return 0.
        for _ in range(30):
            x = rng.getrandbits(WORD_BITS)
            x |= 0b11111 << (5 * rng.randrange(8))  # force an invalid letter
            assert generator.lookup(x) == 0
