"""Formal (BDD-level) verification of synthesized cascades."""

import pytest
from hypothesis import given, settings

from repro.cascade import synthesize_cascade
from repro.cascade.formal import (
    symbolic_cascade_outputs,
    verify_cascade_against_cf,
)
from repro.cf import CharFunction
from repro.errors import CascadeError
from repro.isf import table1_spec
from repro.reduce import algorithm_3_3, full_reduction

from tests.conftest import spec_strategy


class TestFormalVerification:
    def test_table1_cascade_proven(self):
        cf = CharFunction.from_spec(table1_spec())
        cascade = synthesize_cascade(cf, max_cell_inputs=3, max_cell_outputs=3)
        assert verify_cascade_against_cf(cascade, cf)

    def test_reduced_cascade_proven_against_original(self):
        """The cascade of the reduced CF refines the *original* χ too."""
        cf = CharFunction.from_spec(table1_spec())
        reduced, _ = algorithm_3_3(cf)
        cascade = synthesize_cascade(reduced, max_cell_inputs=3, max_cell_outputs=3)
        assert verify_cascade_against_cf(cascade, reduced)
        assert verify_cascade_against_cf(cascade, cf)

    def test_symbolic_outputs_match_simulation(self):
        cf = CharFunction.from_spec(table1_spec())
        cascade = synthesize_cascade(cf, max_cell_inputs=3, max_cell_outputs=3)
        outputs = symbolic_cascade_outputs(cf.bdd, cascade)
        for m in range(16):
            bits = {
                v: (m >> (3 - i)) & 1 for i, v in enumerate(cf.input_vids)
            }
            simulated = cascade.evaluate(bits)
            for vid, fn in outputs.items():
                assert cf.bdd.evaluate(fn, bits) == simulated[vid]

    def test_detects_corrupted_cell(self):
        cf = CharFunction.from_spec(table1_spec())
        cascade = synthesize_cascade(cf, max_cell_inputs=3, max_cell_outputs=3)
        # Invert one realized output bit everywhere: f2 is specified on
        # most of the Table 1 care set, so the refinement must break.
        last = cascade.cells[-1]
        last.table = [(out_bits ^ 1, rail) for out_bits, rail in last.table]
        assert not verify_cascade_against_cf(cascade, cf)

    def test_missing_output_detected(self):
        cf = CharFunction.from_spec(table1_spec())
        cascade = synthesize_cascade(cf, max_cell_inputs=3, max_cell_outputs=3)
        cascade.cells[-1].output_vids = ()
        with pytest.raises(CascadeError):
            verify_cascade_against_cf(cascade, cf)

    @settings(max_examples=15, deadline=None)
    @given(spec_strategy(max_inputs=4, max_outputs=2))
    def test_every_synthesized_cascade_proves(self, spec):
        cf = CharFunction.from_spec(spec)
        cascade = synthesize_cascade(cf, max_cell_inputs=4, max_cell_outputs=4)
        assert verify_cascade_against_cf(cascade, cf)

    @settings(max_examples=10, deadline=None)
    @given(spec_strategy(max_inputs=4, max_outputs=2))
    def test_fully_reduced_cascades_prove_against_original(self, spec):
        cf = CharFunction.from_spec(spec)
        reduced, _ = full_reduction(cf, max_rounds=2)
        cascade = synthesize_cascade(reduced, max_cell_inputs=4, max_cell_outputs=4)
        assert verify_cascade_against_cf(cascade, reduced)
        assert verify_cascade_against_cf(cascade, cf)