"""Round-trip test of the Verilog export through a mini interpreter.

The generated Verilog uses a small, fixed subset (wire concatenations,
case-statement ROMs, bit selects); this test implements an evaluator
for exactly that subset and checks the module computes the same
function as the cascade simulator on every input — i.e. the export is
semantics-preserving, not just syntactically plausible.
"""

import re

from repro.cascade import cascade_to_verilog, synthesize_cascade
from repro.cf import CharFunction
from repro.isf import table1_spec


class MiniVerilog:
    """Evaluator for the exact subset cascade_to_verilog emits."""

    def __init__(self, source: str):
        self.inputs = re.findall(r"input\s+wire\s+(\w+)", source)
        self.outputs = re.findall(r"output\s+wire\s+(\w+)", source)
        # Statements in source order; each is (kind, payload).
        self.statements: list[tuple] = []
        self.widths: dict[str, int] = {name: 1 for name in self.inputs}

        addr_re = re.compile(
            r"wire\s+\[(\d+):0\]\s+(\w+_addr)\s*=\s*(\{[^}]*\}|\w+);"
        )
        reg_re = re.compile(r"reg\s+\[(\d+):0\]\s+(\w+_data);")
        case_re = re.compile(r"case \((\w+)\)(.*?)endcase", re.S)
        entry_re = re.compile(r"\d+'d(\d+):\s*(\w+)\s*=\s*\d+'d(\d+);")
        assign_re = re.compile(r"assign\s+(\w+)\s*=\s*(\w+)\[(\d+)\];")
        rail_re = re.compile(
            r"wire\s+\[(\d+):0\]\s+(\w+_rail)\s*=\s*(\w+)\[(\d+):(\d+)\];"
        )

        for m in addr_re.finditer(source):
            width, name, expr = int(m.group(1)) + 1, m.group(2), m.group(3)
            parts = (
                [p.strip() for p in expr.strip("{}").split(",")]
                if expr.startswith("{")
                else [expr]
            )
            self.widths[name] = width
            self.statements.append(("concat", m.start(), name, parts))
        for m in reg_re.finditer(source):
            self.widths[m.group(2)] = int(m.group(1)) + 1
        for m in case_re.finditer(source):
            addr_wire, body = m.group(1), m.group(2)
            table = {}
            reg_name = None
            for e in entry_re.finditer(body):
                table[int(e.group(1))] = int(e.group(3))
                reg_name = e.group(2)
            self.statements.append(("rom", m.start(), addr_wire, reg_name, table))
        for m in assign_re.finditer(source):
            self.statements.append(
                ("bit", m.start(), m.group(1), m.group(2), int(m.group(3)))
            )
            self.widths[m.group(1)] = 1
        for m in rail_re.finditer(source):
            width, name, src_reg, hi, lo = (
                int(m.group(1)) + 1,
                m.group(2),
                m.group(3),
                int(m.group(4)),
                int(m.group(5)),
            )
            self.widths[name] = width
            self.statements.append(("slice", m.start(), name, src_reg, hi, lo))
        # Execute in textual order — the generator emits producer before
        # consumer, so a single pass evaluates the whole chain.
        self.statements.sort(key=lambda s: s[1])

    def evaluate(self, input_bits: dict[str, int]) -> dict[str, int]:
        values = dict(input_bits)
        for statement in self.statements:
            kind = statement[0]
            if kind == "concat":
                _, _, name, parts = statement
                acc = 0
                for part in parts:
                    acc = (acc << self.widths[part]) | values[part]
                values[name] = acc
            elif kind == "rom":
                _, _, addr_wire, reg_name, table = statement
                values[reg_name] = table.get(values[addr_wire], 0)
            elif kind == "bit":
                _, _, name, src, bit = statement
                values[name] = (values[src] >> bit) & 1
            else:  # slice
                _, _, name, src, hi, lo = statement
                values[name] = (values[src] >> lo) & ((1 << (hi - lo + 1)) - 1)
        return {name: values[name] for name in self.outputs}


class TestVerilogRoundTrip:
    def _build(self, max_in, max_out):
        cf = CharFunction.from_spec(table1_spec())
        cascade = synthesize_cascade(
            cf, max_cell_inputs=max_in, max_cell_outputs=max_out
        )
        names = {v: cf.bdd.name_of(v) for v in cascade.input_vids}
        onames = {v: cf.bdd.name_of(v) for v in cascade.output_vids}
        source = cascade_to_verilog(cascade, input_names=names, output_names=onames)
        return cf, cascade, names, onames, MiniVerilog(source)

    def test_ports_discovered(self):
        _, cascade, names, onames, sim = self._build(3, 3)
        assert set(sim.inputs) == set(names.values())
        assert set(sim.outputs) == set(onames.values())

    def test_exhaustive_equivalence_multicell(self):
        cf, cascade, names, onames, sim = self._build(3, 3)
        assert cascade.num_cells >= 2  # rails are exercised
        self._check_all(cf, cascade, names, onames, sim)

    def test_exhaustive_equivalence_single_cell(self):
        cf, cascade, names, onames, sim = self._build(12, 10)
        assert cascade.num_cells == 1
        self._check_all(cf, cascade, names, onames, sim)

    def _check_all(self, cf, cascade, names, onames, sim):
        for m in range(16):
            bits = {
                v: (m >> (3 - i)) & 1 for i, v in enumerate(cf.input_vids)
            }
            expected = cascade.evaluate(bits)
            got = sim.evaluate({names[v]: b for v, b in bits.items()})
            for vid, want in expected.items():
                assert got[onames[vid]] == want, (m, got, expected)
