"""Tests for the cascade PLD device-fit model."""

from repro.cascade import synthesize_cascade
from repro.cascade.device import NAKAMURA_2005, DeviceSpec, fit_report
from repro.cf import CharFunction
from repro.isf import table1_spec


def table1_cascade():
    cf = CharFunction.from_spec(table1_spec())
    return synthesize_cascade(cf, max_cell_inputs=3, max_cell_outputs=3)


class TestFitReport:
    def test_tiny_cascade_fits_reference_device(self):
        cascade = table1_cascade()
        report = fit_report([cascade], NAKAMURA_2005)
        assert report.fits
        assert report.chips_needed == 1
        assert "fits" in str(report)

    def test_too_many_inputs_flagged(self):
        cascade = table1_cascade()
        tiny = DeviceSpec("tiny", 8, 1 << 16, max_cell_inputs=2, max_cell_outputs=10)
        report = fit_report([cascade], tiny)
        assert not report.fits
        assert any("inputs" in v for v in report.violations)

    def test_memory_limit_flagged(self):
        cascade = table1_cascade()
        tiny = DeviceSpec("tiny", 8, cell_memory_bits=4, max_cell_inputs=12, max_cell_outputs=10)
        report = fit_report([cascade], tiny)
        assert not report.fits
        assert any("bits" in v for v in report.violations)

    def test_chip_folding(self):
        cascade = table1_cascade()
        one_stage = DeviceSpec("one", 1, 1 << 16, 12, 10)
        report = fit_report([cascade, cascade], one_stage)
        assert report.chips_needed == 2 * cascade.num_cells

    def test_reference_device_shape(self):
        assert NAKAMURA_2005.max_stages == 8
        assert NAKAMURA_2005.cell_memory_bits == 65536
        assert NAKAMURA_2005.max_cell_inputs == 12
        assert NAKAMURA_2005.max_cell_outputs == 10
