"""Tests for cascade synthesis from a BDD_for_CF."""

import pytest
from hypothesis import given, settings

from repro.cascade import (
    cost_of,
    realize_forest,
    synthesize_cascade,
    synthesize_forest,
)
from repro.cf import CharFunction
from repro.errors import CascadeError
from repro.isf import MultiOutputISF, table1_spec
from repro.reduce import algorithm_3_3

from tests.conftest import spec_strategy, spec_allows


class TestSynthesizeCascade:
    def test_respects_cell_limits(self):
        cf = CharFunction.from_spec(table1_spec())
        cascade = synthesize_cascade(cf, max_cell_inputs=3, max_cell_outputs=3)
        for cell in cascade.cells:
            assert cell.num_inputs <= 3
            assert cell.num_outputs <= 3

    def test_single_cell_when_unconstrained(self):
        cf = CharFunction.from_spec(table1_spec())
        cascade = synthesize_cascade(cf, max_cell_inputs=12, max_cell_outputs=10)
        assert cascade.num_cells == 1

    def test_cascade_matches_care_set(self):
        spec = table1_spec()
        cf = CharFunction.from_spec(spec)
        cascade = synthesize_cascade(cf, max_cell_inputs=3, max_cell_outputs=3)
        for m, values in spec.care.items():
            bits = {
                v: (m >> (3 - i)) & 1 for i, v in enumerate(cf.input_vids)
            }
            out = cascade.evaluate(bits)
            for vid, want in zip(cf.output_vids, values):
                if want is not None:
                    assert out[vid] == want

    def test_infeasible_raises(self):
        cf = CharFunction.from_spec(table1_spec())
        with pytest.raises(CascadeError):
            synthesize_cascade(cf, max_cell_inputs=1, max_cell_outputs=1)

    def test_empty_cf_rejected(self):
        cf = CharFunction.from_spec(table1_spec())
        broken = cf.replaced(0)
        with pytest.raises(CascadeError):
            synthesize_cascade(broken)

    def test_reduced_cf_still_correct(self):
        spec = table1_spec()
        cf = CharFunction.from_spec(spec)
        reduced, _ = algorithm_3_3(cf)
        cascade = synthesize_cascade(reduced, max_cell_inputs=3, max_cell_outputs=3)
        for m, values in spec.care.items():
            bits = {
                v: (m >> (3 - i)) & 1 for i, v in enumerate(cf.input_vids)
            }
            out = cascade.evaluate(bits)
            for vid, want in zip(cf.output_vids, values):
                if want is not None:
                    assert out[vid] == want

    @settings(max_examples=20, deadline=None)
    @given(spec_strategy(max_inputs=4, max_outputs=2))
    def test_cascade_realizes_an_extension(self, spec):
        cf = CharFunction.from_spec(spec)
        cascade = synthesize_cascade(cf, max_cell_inputs=4, max_cell_outputs=4)
        n = spec.n_inputs
        for m in range(1 << n):
            bits = {
                v: (m >> (n - 1 - i)) & 1 for i, v in enumerate(cf.input_vids)
            }
            out = cascade.evaluate(bits)
            vector = tuple(out.get(v, 0) for v in cf.output_vids)
            assert spec_allows(spec, m, vector)


class TestForestAndRealization:
    def _pipeline(self, spec):
        isf = MultiOutputISF.from_spec(spec)

        def pipeline(indices):
            part = MultiOutputISF(
                isf.bdd,
                isf.input_vids,
                [isf.outputs[i] for i in indices],
                output_names=[isf.output_names[i] for i in indices],
            )
            return CharFunction.from_isf(part)

        return pipeline

    def test_forest_single_when_feasible(self):
        spec = table1_spec()
        forest = synthesize_forest([0, 1], self._pipeline(spec))
        assert len(forest) == 1

    def test_forest_splits_when_needed(self):
        spec = table1_spec()
        # Max 1 output per cell forces the two outputs into separate
        # cascades (each cascade still needs rails).
        forest = synthesize_forest(
            [0, 1], self._pipeline(spec), max_cell_inputs=4, max_cell_outputs=1
        )
        assert len(forest) >= 2
        covered = sorted(i for _, _, idx in forest for i in idx)
        assert covered == [0, 1]

    def test_forest_raises_when_single_output_infeasible(self):
        spec = table1_spec()
        with pytest.raises(CascadeError):
            synthesize_forest(
                [0, 1], self._pipeline(spec), max_cell_inputs=1, max_cell_outputs=1
            )

    def test_realize_forest_evaluates_integers(self):
        spec = table1_spec()
        forest = synthesize_forest([0, 1], self._pipeline(spec))
        fr = realize_forest(forest, 4, 2)
        for m, values in spec.care.items():
            got = fr.evaluate(m)
            bits = [(got >> 1) & 1, got & 1]
            for g, want in zip(bits, values):
                if want is not None:
                    assert g == want

    def test_realize_input_range_checked(self):
        spec = table1_spec()
        forest = synthesize_forest([0, 1], self._pipeline(spec))
        fr = realize_forest(forest, 4, 2)
        with pytest.raises(CascadeError):
            fr.evaluate(16)

    def test_cost_accounting(self):
        spec = table1_spec()
        forest = synthesize_forest([0, 1], self._pipeline(spec))
        cascades = [c for c, _, _ in forest]
        cost = cost_of(cascades, redundant_vars=2, aux_memory_bits=64)
        assert cost.cells == sum(c.num_cells for c in cascades)
        assert cost.cascades == len(cascades)
        assert cost.redundant_vars == 2
        assert cost.total_memory_bits == cost.lut_memory_bits + 64
