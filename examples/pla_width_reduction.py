"""Width reduction of a user function supplied as a PLA file.

Authors a small incompletely specified controller function in espresso
PLA format, loads it, and runs the full reduction stack — sifting,
support reduction, Algorithm 3.3 — printing the width profile at each
stage.  This is the workflow for applying the paper's method to your
own functions.

Run:  python examples/pla_width_reduction.py
"""

from repro.bdd.dot import to_dot
from repro.cf import CharFunction, max_width, width_profile
from repro.isf import loads_pla
from repro.reduce import algorithm_3_3, reduce_support

# A 6-input, 3-output priority resolver specified only on one-hot and
# idle request patterns; everything else (multiple simultaneous
# requests on the sampled cycle) is don't care.
PLA = """\
.i 6
.o 3
.ilb req0 req1 req2 req3 req4 req5
.ob grant2 grant1 grant0
.type fr
100000 001
010000 010
001000 011
000100 100
000010 101
000001 110
000000 000
"""


def main() -> None:
    isf = loads_pla(PLA, name="priority")
    print(f"loaded PLA: {isf.n_inputs} inputs, {isf.n_outputs} outputs")

    cf = CharFunction.from_isf(isf)
    print("\ninitial BDD_for_CF:")
    print(f"  order: {' '.join(cf.bdd.order())}")
    print(f"  max width {max_width(cf.bdd, cf.root)}, profile "
          f"{width_profile(cf.bdd, cf.root)}")

    cf.sift(cost="widthsum")
    print("\nafter sifting (sum-of-widths cost):")
    print(f"  order: {' '.join(cf.bdd.order())}")
    print(f"  max width {max_width(cf.bdd, cf.root)}")

    reduced, removed = reduce_support(cf)
    names = [cf.bdd.name_of(v) for v in removed]
    print(f"\nsupport reduction removed {len(removed)} variables: {names or '-'}")

    reduced, stats = algorithm_3_3(reduced)
    print(f"\nafter Algorithm 3.3 ({stats.merges} merges):")
    print(f"  max width {max_width(reduced.bdd, reduced.root)}, profile "
          f"{width_profile(reduced.bdd, reduced.root)}")

    # The refinement still honours every specified line of the PLA.
    for m, values in {
        0b100000: (0, 0, 1),
        0b010000: (0, 1, 0),
        0b000001: (1, 1, 0),
        0b000000: (0, 0, 0),
    }.items():
        assert reduced.sample_output(m) == values
    print("\nverified: all specified PLA lines preserved")

    with open("priority_cf.dot", "w") as handle:
        handle.write(to_dot(reduced.bdd, {"chi": reduced.root}))
    print("reduced CF drawn to priority_cf.dot (render with graphviz)")


if __name__ == "__main__":
    main()
