"""A complete design flow: build, reduce, persist, synthesize, fit, export.

Walks the path a user would take for a production function:

1. build the 5-7-11-13 RNS converter's most-significant partition,
2. sift + support-reduce + Algorithm 3.3 (the iterated pipeline),
3. save the reduced BDD_for_CF to JSON (reloading skips the minutes of
   sifting next time),
4. synthesize a 12-in/10-out LUT cascade and *formally prove* it
   correct,
5. check the design fits the 8-stage 64K-bit SRAM cascade device of
   the paper's reference [11],
6. export Verilog.

Run:  python examples/design_flow.py
"""

from repro.bdd.io import dump_charfunction, load_charfunction
from repro.benchfns import rns_benchmark
from repro.cascade import (
    NAKAMURA_2005,
    cascade_to_verilog,
    fit_report,
    synthesize_cascade,
    verify_cascade_against_cf,
)
from repro.cf import max_width
from repro.reduce import full_reduction


def main() -> None:
    benchmark = rns_benchmark([5, 7, 11, 13])
    isf = benchmark.build()
    part = isf.bipartition()[0]
    print(f"function: {benchmark.name} / F1 "
          f"({part.n_outputs} of {isf.n_outputs} outputs)")

    # -- reduce ---------------------------------------------------------
    from repro.cf import CharFunction

    cf = CharFunction.from_isf(part)
    print(f"initial CF: width {max_width(cf.bdd, cf.root)}, "
          f"{cf.num_nodes()} nodes")
    reduced, report = full_reduction(cf, max_rounds=2)
    print(f"after {len(report.rounds)} reduction round(s): "
          f"width {report.final_max_width}, {reduced.num_nodes()} nodes, "
          f"{report.total_removed_vars} variables removed")

    # -- persist --------------------------------------------------------
    path = "rns_f1_reduced.json"
    with open(path, "w") as handle:
        handle.write(dump_charfunction(reduced))
    reloaded = load_charfunction(open(path).read())
    assert max_width(reloaded.bdd, reloaded.root) == report.final_max_width
    print(f"persisted + reloaded from {path}")

    # -- synthesize + prove ----------------------------------------------
    cascade = synthesize_cascade(reloaded, max_cell_inputs=12, max_cell_outputs=10)
    print(f"cascade: {cascade.num_cells} cells, "
          f"{cascade.num_lut_outputs} LUT outputs, "
          f"{cascade.memory_bits} memory bits")
    assert verify_cascade_against_cf(cascade, reloaded)
    print("formally verified: chi(X, g(X)) == 1 for every input")

    # -- device fit -------------------------------------------------------
    report = fit_report([cascade], NAKAMURA_2005)
    print(report)

    # -- export -----------------------------------------------------------
    names = {v: reloaded.bdd.name_of(v) for v in cascade.input_vids}
    onames = {v: reloaded.bdd.name_of(v) for v in cascade.output_vids}
    verilog = cascade_to_verilog(
        cascade, module_name="rns_f1", input_names=names, output_names=onames
    )
    with open("rns_f1.v", "w") as handle:
        handle.write(verilog)
    print(f"Verilog written to rns_f1.v ({len(verilog.splitlines())} lines)")


if __name__ == "__main__":
    main()
