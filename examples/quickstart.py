"""Quickstart: the paper's Table 1 function, end to end.

Builds the BDD_for_CF of a 4-input 2-output incompletely specified
function, reduces its width with Algorithms 3.1 and 3.3, decomposes it
(Theorem 3.1) and synthesizes a LUT cascade — reproducing the numbers
of Examples 2.2, 3.5 and 3.6 along the way.

Run:  python examples/quickstart.py
"""

from repro.cascade import synthesize_cascade
from repro.cf import CharFunction, max_width, width_profile
from repro.decomp import decompose_at_height
from repro.isf import table1_spec
from repro.reduce import algorithm_3_1, algorithm_3_3


def main() -> None:
    spec = table1_spec()
    print("Function: Table 1 of the paper (4 inputs, 2 outputs, ternary)")
    print(f"  don't-care ratio: {100 * spec.dc_ratio():.1f}%\n")

    # 1. The characteristic-function BDD (Definition 2.3/2.4).
    cf = CharFunction.from_spec(spec)
    print("BDD_for_CF (Fig. 2(b)):")
    print(f"  variable order: {' '.join(cf.bdd.order())}")
    print(f"  non-terminal nodes: {cf.num_nodes()}   (paper: 15)")
    print(f"  max width: {max_width(cf.bdd, cf.root)}   (paper: 8)")
    print(f"  width profile by height: {width_profile(cf.bdd, cf.root)}\n")

    # 2. Algorithm 3.1 — local child merging (Example 3.5).
    r31 = algorithm_3_1(cf)
    print("After Algorithm 3.1 (Example 3.5 expects width 5, nodes 12):")
    print(f"  max width: {max_width(r31.bdd, r31.root)}, nodes: {r31.num_nodes()}\n")

    # 3. Algorithm 3.3 — clique-cover width reduction (Example 3.6).
    r33, stats = algorithm_3_3(cf)
    print("After Algorithm 3.3 (Example 3.6 expects width 4, nodes 12):")
    print(f"  max width: {max_width(r33.bdd, r33.root)}, nodes: {r33.num_nodes()}")
    print(f"  merges performed: {stats.merges}\n")

    # Every reduction is a refinement: specified values never change.
    for m, values in spec.care.items():
        got = r33.sample_output(m)
        for g, want in zip(got, values):
            assert want is None or g == want
    print("Verified: the reduced CF agrees with every specified value.\n")

    # 4. Functional decomposition at the cut below (x1, x2, x3, y1).
    d = decompose_at_height(r33, 2)
    print("Theorem 3.1 decomposition at height 2:")
    print(f"  column functions at the cut: {len(d.columns)}")
    print(f"  rails between H and G: {d.rails} = ceil(log2 W)\n")

    # 5. A LUT cascade with tiny (3-in/3-out) cells.
    cascade = synthesize_cascade(r33, max_cell_inputs=3, max_cell_outputs=3)
    print(f"LUT cascade: {cascade.num_cells} cells, "
          f"{cascade.num_lut_outputs} LUT outputs, "
          f"{cascade.memory_bits} memory bits")
    for cell in cascade.cells:
        print(
            f"  cell {cell.index}: {cell.num_inputs} inputs "
            f"({cell.rail_in_width} rails), {cell.num_outputs} outputs "
            f"({cell.rail_out_width} rails)"
        )


if __name__ == "__main__":
    main()
