"""An English word dictionary on the Fig. 8 architecture (Sect. 5.3).

Registers a word list as an *address generator* (word -> unique index,
0 for everything else), then realizes it two ways:

* DC=0: LUT cascades alone — large, many cells;
* Fig. 8: outputs 0 replaced by don't care, redundant input bits
  removed, width reduced with Algorithm 3.3, one small cascade plus an
  auxiliary memory and a comparator.

The demo then runs dictionary lookups through the simulated hardware.

Run:  python examples/english_word_dictionary.py
"""

from repro.benchfns import WordList, encode_word, generate_words
from repro.experiments.table6 import (
    design_dc0,
    design_fig8,
    verify_dc0,
    verify_generator,
)


def main() -> None:
    words = generate_words(200, seed=2005)
    word_list = WordList(words)
    print(f"word list: {len(word_list)} synthetic English-like words, "
          f"m = {word_list.index_bits} index bits")
    print("  first ten:", ", ".join(words[:10]), "\n")

    cost0, realization0 = design_dc0(word_list)
    verify_dc0(word_list, realization0, samples=150)
    print("DC=0 design (cascades only):")
    print(f"  #Cel={cost0.cells}  #LUT={cost0.lut_outputs}  "
          f"#Cas={cost0.cascades}  LUT bits={cost0.lut_memory_bits}\n")

    cost8, generator = design_fig8(word_list)
    verify_generator(word_list, generator, samples=150)
    print("Fig. 8 design (cascade + AUX memory + comparator):")
    print(f"  #Cel={cost8.cells}  #LUT={cost8.lut_outputs}  "
          f"#Cas={cost8.cascades}  #RV={cost8.redundant_vars}")
    print(f"  LUT bits={cost8.lut_memory_bits}  AUX bits={cost8.aux_memory_bits}")
    total0 = cost0.total_memory_bits
    total8 = cost8.total_memory_bits
    print(f"  total memory: {total8} vs {total0} bits "
          f"({100 * (1 - total8 / total0):.1f}% smaller)\n")

    print("lookups through the simulated Fig. 8 hardware:")
    for word in (words[0], words[57], words[199], "zzzzz", "notword"):
        idx = generator.lookup(encode_word(word))
        status = f"index {idx}" if idx else "not in the dictionary"
        print(f"  {word!r:12} -> {status}")
        assert idx == word_list.index_of(word)


if __name__ == "__main__":
    main()
