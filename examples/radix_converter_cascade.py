"""RNS-to-binary converter realized as LUT cascades (Sect. 5.2 / Fig. 9).

Builds the 5-7-11-13 residue-number-system converter (14 inputs, 13
outputs, 69.5% input don't cares), synthesizes LUT cascades with the
paper's 12-input/10-output cells — once from the DC=0 extension and
once after support reduction + Algorithm 3.3 — verifies both against
the Chinese-remainder reference, and exports the reduced design as
Verilog.

Run:  python examples/radix_converter_cascade.py
"""

import random

from repro.benchfns import rns_benchmark
from repro.cascade import cascade_to_verilog
from repro.experiments.table5 import design, verify_realization


def main() -> None:
    benchmark = rns_benchmark([5, 7, 11, 13])
    isf = benchmark.build()
    print(f"{benchmark.name}: {benchmark.n_inputs} inputs, "
          f"{benchmark.n_outputs} outputs, "
          f"{100 * benchmark.input_dc_ratio():.1f}% input don't cares")
    print(f"care set: {benchmark.care_count()} of "
          f"{1 << benchmark.n_inputs} input combinations\n")

    for label, reduce in (("DC=0 extension", False), ("Alg. 3.3 reduced", True)):
        base = isf if reduce else isf.extension(0)
        cost, realization, forest = design(base, reduce=reduce)
        print(f"{label}:")
        print(f"  {cost.cells} cells, {cost.lut_outputs} LUT outputs, "
              f"{cost.cascades} cascades, {cost.lut_memory_bits} memory bits")
        verify_realization(benchmark, realization, samples=80)
        print("  verified against the CRT reference on sampled residues")

        # Spot demo: convert a few numbers through the hardware model.
        rng = random.Random(0)
        for _ in range(3):
            x = rng.randrange(5 * 7 * 11 * 13)
            residues = [x % m for m in (5, 7, 11, 13)]
            minterm = 0
            for r, bits in zip(residues, (3, 3, 4, 4)):
                minterm = (minterm << bits) | r
            got = realization.evaluate(minterm)
            print(f"    residues {residues} -> {got}  (expected {x})")
            assert got == x
        print()

        if reduce:
            cascade, cf, indices = forest[0]
            names = {v: cf.bdd.name_of(v) for v in cascade.input_vids}
            onames = {v: f"out{i}" for i, v in zip(indices, cf.output_vids)}
            verilog = cascade_to_verilog(
                cascade,
                module_name="rns_to_binary_msb",
                input_names=names,
                output_names=onames,
            )
            path = "rns_cascade.v"
            with open(path, "w") as handle:
                handle.write(verilog)
            print(f"Verilog for the MSB cascade written to {path} "
                  f"({len(verilog.splitlines())} lines)")


if __name__ == "__main__":
    main()
